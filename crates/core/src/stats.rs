//! Commit/abort accounting.
//!
//! Counters are sharded per thread: each thread records into its own
//! cache-padded slot (assigned via `shard.rs`) and [`StmStats::snapshot`]
//! aggregates across shards. A commit therefore never fetch-adds a
//! *globally shared* cache line — the seed's single padded counter block
//! serialized every commit at high core counts. Reading while
//! transactions run yields a consistent-enough snapshot for reporting
//! (exact totals are only guaranteed quiescently).

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::semantics::Semantics;
use crate::shard::current_thread_index;

/// Number of counter shards. Power of two; threads beyond this share
/// shards (still correct — the counters are atomic — merely less
/// parallel).
const STAT_SHARDS: usize = 32;

/// One thread stripe's counters. Plain (unpadded) atomics inside one
/// padded block: a thread touches only its own block.
#[derive(Debug, Default)]
struct StatShard {
    commits: AtomicU64,
    aborts_read_conflict: AtomicU64,
    aborts_locked: AtomicU64,
    aborts_validation: AtomicU64,
    aborts_elastic_cut: AtomicU64,
    aborts_capacity: AtomicU64,
    aborts_unavailable: AtomicU64,
    aborts_user_retry: AtomicU64,
    elastic_cuts: AtomicU64,
    extensions: AtomicU64,
    irrevocable_upgrades: AtomicU64,
    irrevocable_commits: AtomicU64,
    boxed_writes: AtomicU64,
    commits_durable: AtomicU64,
    group_commit_batches: AtomicU64,
    fsyncs: AtomicU64,
    wal_bytes: AtomicU64,
    wait_gate_ns: AtomicU64,
    wait_arbitrate_ns: AtomicU64,
    wait_clock_ns: AtomicU64,
    wal_wait_ns: AtomicU64,
}

impl StatShard {
    fn counters(&self) -> [&AtomicU64; 21] {
        [
            &self.commits,
            &self.aborts_read_conflict,
            &self.aborts_locked,
            &self.aborts_validation,
            &self.aborts_elastic_cut,
            &self.aborts_capacity,
            &self.aborts_unavailable,
            &self.aborts_user_retry,
            &self.elastic_cuts,
            &self.extensions,
            &self.irrevocable_upgrades,
            &self.irrevocable_commits,
            &self.boxed_writes,
            &self.commits_durable,
            &self.group_commit_batches,
            &self.fsyncs,
            &self.wal_bytes,
            &self.wait_gate_ns,
            &self.wait_arbitrate_ns,
            &self.wait_clock_ns,
            &self.wal_wait_ns,
        ]
    }
}

/// Sharded counter block owned by an [`crate::Stm`].
#[derive(Debug)]
pub struct StmStats {
    shards: Box<[CachePadded<StatShard>]>,
}

impl Default for StmStats {
    fn default() -> Self {
        Self { shards: (0..STAT_SHARDS).map(|_| CachePadded::new(StatShard::default())).collect() }
    }
}

impl StmStats {
    /// This thread's home shard.
    #[inline]
    fn shard(&self) -> &StatShard {
        &self.shards[current_thread_index() & (STAT_SHARDS - 1)]
    }

    pub(crate) fn record_commit(&self) {
        self.shard().commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_irrevocable_commit(&self) {
        let s = self.shard();
        s.irrevocable_commits.fetch_add(1, Ordering::Relaxed);
        s.commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one abort, classified by [`crate::error::AbortCause`]
    /// (the `semantics` of the aborted attempt decides whether a
    /// read-time conflict is a *cut* or plain validation). The
    /// validation cause keeps the finer read-time vs commit-time split
    /// in two counters.
    pub(crate) fn record_abort(&self, abort: crate::Abort, semantics: Semantics) {
        use crate::error::AbortCause;
        let s = self.shard();
        let ctr = match abort.cause(semantics) {
            None => return, // Cancel is not an abort
            Some(AbortCause::Cut) => &s.aborts_elastic_cut,
            Some(AbortCause::LockConflict) => &s.aborts_locked,
            Some(AbortCause::Capacity) => &s.aborts_capacity,
            Some(AbortCause::Unavailable) => &s.aborts_unavailable,
            Some(AbortCause::Other) => &s.aborts_user_retry,
            Some(AbortCause::Validation) => match abort {
                crate::Abort::ReadConflict { .. } => &s.aborts_read_conflict,
                _ => &s.aborts_validation,
            },
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` elastic cuts in one add (no-op when `n == 0`).
    pub(crate) fn record_cuts(&self, n: u64) {
        if n > 0 {
            self.shard().elastic_cuts.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record `n` read-version extensions in one add (no-op when
    /// `n == 0`).
    pub(crate) fn record_extensions(&self, n: u64) {
        if n > 0 {
            self.shard().extensions.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_irrevocable_upgrade(&self) {
        self.shard().irrevocable_upgrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one buffered write whose payload exceeded the inline
    /// budget and took the `Box<dyn Any>` slow path (an allocation plus
    /// an erased destructor per buffered write). A steadily growing
    /// count on a hot path means a value type should be redesigned to
    /// fit [`crate::INLINE_WRITE_WORDS`] — typically by `Arc`-boxing
    /// the large part, as `polytm-kv`'s `Value` does.
    pub(crate) fn record_boxed_write(&self) {
        self.shard().boxed_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record durability work (see [`crate::Stm::record_durable`]): a
    /// group-commit leader reports its whole batch in one call, so the
    /// counters cost nothing on unbatched paths.
    pub(crate) fn record_durable(&self, commits: u64, batches: u64, fsyncs: u64, wal_bytes: u64) {
        let s = self.shard();
        if commits > 0 {
            s.commits_durable.fetch_add(commits, Ordering::Relaxed);
        }
        if batches > 0 {
            s.group_commit_batches.fetch_add(batches, Ordering::Relaxed);
        }
        if fsyncs > 0 {
            s.fsyncs.fetch_add(fsyncs, Ordering::Relaxed);
        }
        if wal_bytes > 0 {
            s.wal_bytes.fetch_add(wal_bytes, Ordering::Relaxed);
        }
    }

    /// Record an attempt's accumulated wait nanoseconds (see the
    /// `wait_*` snapshot fields). Each add is skipped when zero, so
    /// attempts that never waited — the common case — touch nothing.
    pub(crate) fn record_waits(&self, gate_ns: u64, arbitrate_ns: u64, clock_ns: u64) {
        if gate_ns | arbitrate_ns | clock_ns == 0 {
            return;
        }
        let s = self.shard();
        if gate_ns > 0 {
            s.wait_gate_ns.fetch_add(gate_ns, Ordering::Relaxed);
        }
        if arbitrate_ns > 0 {
            s.wait_arbitrate_ns.fetch_add(arbitrate_ns, Ordering::Relaxed);
        }
        if clock_ns > 0 {
            s.wait_clock_ns.fetch_add(clock_ns, Ordering::Relaxed);
        }
    }

    /// Record time a committer spent blocked on WAL durability (group
    /// commit linger + fsync as seen from the waiting side).
    pub(crate) fn record_wal_wait(&self, ns: u64) {
        if ns > 0 {
            self.shard().wal_wait_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Aggregate all shards into one snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut out = StatsSnapshot::default();
        for shard in self.shards.iter() {
            // Zipped against counters() so the counter list lives in
            // exactly one place; a mismatch is a compile error here.
            let dst: [&mut u64; 21] = [
                &mut out.commits,
                &mut out.aborts_read_conflict,
                &mut out.aborts_locked,
                &mut out.aborts_validation,
                &mut out.aborts_elastic_cut,
                &mut out.aborts_capacity,
                &mut out.aborts_unavailable,
                &mut out.aborts_user_retry,
                &mut out.elastic_cuts,
                &mut out.extensions,
                &mut out.irrevocable_upgrades,
                &mut out.irrevocable_commits,
                &mut out.boxed_writes,
                &mut out.commits_durable,
                &mut out.group_commit_batches,
                &mut out.fsyncs,
                &mut out.wal_bytes,
                &mut out.wait_gate_ns,
                &mut out.wait_arbitrate_ns,
                &mut out.wait_clock_ns,
                &mut out.wal_wait_ns,
            ];
            for (src, dst) in shard.counters().iter().zip(dst) {
                *dst += src.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Reset all counters to zero (between benchmark phases).
    pub fn reset(&self) {
        for shard in self.shards.iter() {
            for c in shard.counters() {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Point-in-time copy of the [`StmStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing counter labels
pub struct StatsSnapshot {
    pub commits: u64,
    pub aborts_read_conflict: u64,
    pub aborts_locked: u64,
    pub aborts_validation: u64,
    pub aborts_elastic_cut: u64,
    pub aborts_capacity: u64,
    pub aborts_unavailable: u64,
    pub aborts_user_retry: u64,
    pub elastic_cuts: u64,
    pub extensions: u64,
    pub irrevocable_upgrades: u64,
    pub irrevocable_commits: u64,
    pub boxed_writes: u64,
    pub commits_durable: u64,
    pub group_commit_batches: u64,
    pub fsyncs: u64,
    pub wal_bytes: u64,
    pub wait_gate_ns: u64,
    pub wait_arbitrate_ns: u64,
    pub wait_clock_ns: u64,
    pub wal_wait_ns: u64,
}

impl StatsSnapshot {
    /// Total nanoseconds transaction attempts spent waiting inside the
    /// STM (era gate + arbitrated lock waits + contention backoff) —
    /// the `wait_stm_ns` scenario column.
    pub fn stm_wait_ns(&self) -> u64 {
        self.wait_gate_ns + self.wait_arbitrate_ns + self.wait_clock_ns
    }
    /// Total aborts across all causes.
    pub fn aborts(&self) -> u64 {
        self.aborts_read_conflict
            + self.aborts_locked
            + self.aborts_validation
            + self.aborts_elastic_cut
            + self.aborts_capacity
            + self.aborts_unavailable
            + self.aborts_user_retry
    }

    /// The five contention causes as `(label, count)` pairs, in the
    /// order the bench rows report them: lock-conflict (a location lock
    /// held by another transaction), validation (read-time or
    /// commit-time read-set validation under non-elastic semantics),
    /// cut (an elastic window that could not absorb a conflicting
    /// update), capacity (the snapshot registry had no free slot to
    /// protect a bound), unavailable (snapshot history truncated past
    /// an unprotected bound). User retries are deliberately excluded:
    /// they are workload logic, not contention.
    pub fn aborts_by_cause(&self) -> [(&'static str, u64); 5] {
        [
            ("lock-conflict", self.aborts_locked),
            ("validation", self.aborts_read_conflict + self.aborts_validation),
            ("cut", self.aborts_elastic_cut),
            ("capacity", self.aborts_capacity),
            ("unavailable", self.aborts_unavailable),
        ]
    }

    /// Aborts per commit; 0.0 when nothing committed.
    pub fn abort_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts() as f64 / self.commits as f64
        }
    }

    /// Difference of two snapshots (for per-phase accounting).
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits - earlier.commits,
            aborts_read_conflict: self.aborts_read_conflict - earlier.aborts_read_conflict,
            aborts_locked: self.aborts_locked - earlier.aborts_locked,
            aborts_validation: self.aborts_validation - earlier.aborts_validation,
            aborts_elastic_cut: self.aborts_elastic_cut - earlier.aborts_elastic_cut,
            aborts_capacity: self.aborts_capacity - earlier.aborts_capacity,
            aborts_unavailable: self.aborts_unavailable - earlier.aborts_unavailable,
            aborts_user_retry: self.aborts_user_retry - earlier.aborts_user_retry,
            elastic_cuts: self.elastic_cuts - earlier.elastic_cuts,
            extensions: self.extensions - earlier.extensions,
            irrevocable_upgrades: self.irrevocable_upgrades - earlier.irrevocable_upgrades,
            irrevocable_commits: self.irrevocable_commits - earlier.irrevocable_commits,
            boxed_writes: self.boxed_writes - earlier.boxed_writes,
            commits_durable: self.commits_durable - earlier.commits_durable,
            group_commit_batches: self.group_commit_batches - earlier.group_commit_batches,
            fsyncs: self.fsyncs - earlier.fsyncs,
            wal_bytes: self.wal_bytes - earlier.wal_bytes,
            wait_gate_ns: self.wait_gate_ns - earlier.wait_gate_ns,
            wait_arbitrate_ns: self.wait_arbitrate_ns - earlier.wait_arbitrate_ns,
            wait_clock_ns: self.wait_clock_ns - earlier.wait_clock_ns,
            wal_wait_ns: self.wal_wait_ns - earlier.wal_wait_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Abort;

    #[test]
    fn commit_and_abort_counting() {
        let s = StmStats::default();
        s.record_commit();
        s.record_commit();
        s.record_abort(Abort::ReadConflict { addr: 0 }, Semantics::Opaque);
        s.record_abort(Abort::Locked { addr: 0, owner: 0 }, Semantics::Opaque);
        s.record_abort(Abort::ValidationFailed { addr: 0 }, Semantics::Opaque);
        let snap = s.snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.aborts(), 3);
        assert!((snap.abort_ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn elastic_read_conflicts_count_as_cut_aborts() {
        let s = StmStats::default();
        s.record_abort(Abort::ReadConflict { addr: 0 }, Semantics::elastic());
        s.record_abort(Abort::ReadConflict { addr: 0 }, Semantics::Opaque);
        // Commit-time validation stays validation even when elastic.
        s.record_abort(Abort::ValidationFailed { addr: 0 }, Semantics::elastic());
        let snap = s.snapshot();
        assert_eq!(snap.aborts_elastic_cut, 1);
        assert_eq!(snap.aborts_read_conflict, 1);
        assert_eq!(snap.aborts_validation, 1);
        assert_eq!(snap.aborts(), 3);
    }

    #[test]
    fn cause_groups_cover_the_contention_buckets() {
        let s = StmStats::default();
        s.record_abort(Abort::Locked { addr: 0, owner: 1 }, Semantics::Opaque);
        s.record_abort(Abort::ReadConflict { addr: 0 }, Semantics::Opaque);
        s.record_abort(Abort::ValidationFailed { addr: 0 }, Semantics::Opaque);
        s.record_abort(Abort::ReadConflict { addr: 0 }, Semantics::elastic());
        s.record_abort(Abort::SnapshotUnavailable { addr: 0 }, Semantics::Snapshot);
        s.record_abort(Abort::SnapshotCapacity { addr: 0 }, Semantics::Snapshot);
        s.record_abort(Abort::Retry, Semantics::Opaque);
        let by_cause = s.snapshot().aborts_by_cause();
        assert_eq!(
            by_cause,
            [
                ("lock-conflict", 1),
                ("validation", 2),
                ("cut", 1),
                ("capacity", 1),
                ("unavailable", 1)
            ]
        );
        // User retries are in the total but not a contention cause.
        assert_eq!(s.snapshot().aborts(), 7);
    }

    #[test]
    fn cancel_is_not_an_abort() {
        let s = StmStats::default();
        s.record_abort(Abort::Cancel, Semantics::Opaque);
        assert_eq!(s.snapshot().aborts(), 0);
    }

    #[test]
    fn cuts_extensions_and_upgrades() {
        let s = StmStats::default();
        s.record_cuts(3);
        s.record_cuts(0);
        s.record_extensions(2);
        s.record_extensions(0);
        s.record_irrevocable_upgrade();
        s.record_irrevocable_commit();
        let snap = s.snapshot();
        assert_eq!(snap.elastic_cuts, 3);
        assert_eq!(snap.extensions, 2);
        assert_eq!(snap.irrevocable_upgrades, 1);
        assert_eq!(snap.irrevocable_commits, 1);
        assert_eq!(snap.commits, 1);
    }

    #[test]
    fn delta_and_reset() {
        let s = StmStats::default();
        s.record_commit();
        let first = s.snapshot();
        s.record_commit();
        s.record_abort(Abort::Retry, Semantics::Opaque);
        let second = s.snapshot();
        let d = second.delta_since(&first);
        assert_eq!(d.commits, 1);
        assert_eq!(d.aborts_user_retry, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn boxed_writes_are_counted_and_reset() {
        let s = StmStats::default();
        s.record_boxed_write();
        s.record_boxed_write();
        assert_eq!(s.snapshot().boxed_writes, 2);
        let d = s.snapshot().delta_since(&StatsSnapshot::default());
        assert_eq!(d.boxed_writes, 2);
        s.reset();
        assert_eq!(s.snapshot().boxed_writes, 0);
    }

    #[test]
    fn durability_bucket_batches_and_resets() {
        let s = StmStats::default();
        // A group-commit leader reporting a 3-commit batch, then a
        // solo commit's own fsync.
        s.record_durable(3, 1, 1, 96);
        s.record_durable(1, 1, 1, 32);
        let snap = s.snapshot();
        assert_eq!(snap.commits_durable, 4);
        assert_eq!(snap.group_commit_batches, 2);
        assert_eq!(snap.fsyncs, 2);
        assert_eq!(snap.wal_bytes, 128);
        let d = s.snapshot().delta_since(&snap);
        assert_eq!(d.commits_durable, 0);
        assert_eq!(d.wal_bytes, 0);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn abort_ratio_of_empty_snapshot_is_zero() {
        assert_eq!(StatsSnapshot::default().abort_ratio(), 0.0);
    }

    #[test]
    fn wait_counters_accumulate_and_reset() {
        let s = StmStats::default();
        s.record_waits(0, 0, 0); // the common no-wait case touches nothing
        s.record_waits(100, 20, 0);
        s.record_waits(0, 0, 7);
        s.record_wal_wait(500);
        s.record_wal_wait(0);
        let snap = s.snapshot();
        assert_eq!(snap.wait_gate_ns, 100);
        assert_eq!(snap.wait_arbitrate_ns, 20);
        assert_eq!(snap.wait_clock_ns, 7);
        assert_eq!(snap.stm_wait_ns(), 127);
        assert_eq!(snap.wal_wait_ns, 500);
        let d = s.snapshot().delta_since(&snap);
        assert_eq!(d.stm_wait_ns(), 0);
        assert_eq!(d.wal_wait_ns, 0);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn counts_from_many_threads_aggregate() {
        let s = StmStats::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        s.record_commit();
                    }
                    s.record_abort(Abort::Retry, Semantics::Opaque);
                });
            }
        });
        let snap = s.snapshot();
        assert_eq!(snap.commits, 800);
        assert_eq!(snap.aborts_user_retry, 8);
    }
}
