//! Commit/abort accounting.
//!
//! Counters are relaxed atomics padded to cache lines; reading them while
//! transactions run yields a consistent-enough snapshot for reporting
//! (exact totals are only guaranteed quiescently).

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Mutable counter block owned by an [`crate::Stm`].
#[derive(Debug, Default)]
pub struct StmStats {
    commits: CachePadded<AtomicU64>,
    aborts_read_conflict: CachePadded<AtomicU64>,
    aborts_locked: CachePadded<AtomicU64>,
    aborts_validation: CachePadded<AtomicU64>,
    aborts_snapshot: CachePadded<AtomicU64>,
    aborts_user_retry: CachePadded<AtomicU64>,
    elastic_cuts: CachePadded<AtomicU64>,
    extensions: CachePadded<AtomicU64>,
    irrevocable_upgrades: CachePadded<AtomicU64>,
    irrevocable_commits: CachePadded<AtomicU64>,
}

impl StmStats {
    pub(crate) fn record_commit(&self) {
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_irrevocable_commit(&self) {
        self.irrevocable_commits.fetch_add(1, Ordering::Relaxed);
        self.commits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_abort(&self, abort: crate::Abort) {
        use crate::Abort::*;
        let ctr = match abort {
            ReadConflict { .. } => &self.aborts_read_conflict,
            Locked { .. } => &self.aborts_locked,
            ValidationFailed { .. } => &self.aborts_validation,
            SnapshotUnavailable { .. } => &self.aborts_snapshot,
            Retry => &self.aborts_user_retry,
            // Cancellation, read-only violations and irrevocable restarts
            // are not contention; count them as user retries for lack of a
            // better bucket, except Cancel which is not counted at all.
            ReadOnlyViolation | RestartIrrevocable => &self.aborts_user_retry,
            Cancel => return,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_cut(&self, n: u64) {
        if n > 0 {
            self.elastic_cuts.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_extension(&self) {
        self.extensions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_irrevocable_upgrade(&self) {
        self.irrevocable_upgrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits.load(Ordering::Relaxed),
            aborts_read_conflict: self.aborts_read_conflict.load(Ordering::Relaxed),
            aborts_locked: self.aborts_locked.load(Ordering::Relaxed),
            aborts_validation: self.aborts_validation.load(Ordering::Relaxed),
            aborts_snapshot: self.aborts_snapshot.load(Ordering::Relaxed),
            aborts_user_retry: self.aborts_user_retry.load(Ordering::Relaxed),
            elastic_cuts: self.elastic_cuts.load(Ordering::Relaxed),
            extensions: self.extensions.load(Ordering::Relaxed),
            irrevocable_upgrades: self.irrevocable_upgrades.load(Ordering::Relaxed),
            irrevocable_commits: self.irrevocable_commits.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (between benchmark phases).
    pub fn reset(&self) {
        for c in [
            &self.commits,
            &self.aborts_read_conflict,
            &self.aborts_locked,
            &self.aborts_validation,
            &self.aborts_snapshot,
            &self.aborts_user_retry,
            &self.elastic_cuts,
            &self.extensions,
            &self.irrevocable_upgrades,
            &self.irrevocable_commits,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time copy of the [`StmStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing counter labels
pub struct StatsSnapshot {
    pub commits: u64,
    pub aborts_read_conflict: u64,
    pub aborts_locked: u64,
    pub aborts_validation: u64,
    pub aborts_snapshot: u64,
    pub aborts_user_retry: u64,
    pub elastic_cuts: u64,
    pub extensions: u64,
    pub irrevocable_upgrades: u64,
    pub irrevocable_commits: u64,
}

impl StatsSnapshot {
    /// Total aborts across all causes.
    pub fn aborts(&self) -> u64 {
        self.aborts_read_conflict
            + self.aborts_locked
            + self.aborts_validation
            + self.aborts_snapshot
            + self.aborts_user_retry
    }

    /// Aborts per commit; 0.0 when nothing committed.
    pub fn abort_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts() as f64 / self.commits as f64
        }
    }

    /// Difference of two snapshots (for per-phase accounting).
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            commits: self.commits - earlier.commits,
            aborts_read_conflict: self.aborts_read_conflict - earlier.aborts_read_conflict,
            aborts_locked: self.aborts_locked - earlier.aborts_locked,
            aborts_validation: self.aborts_validation - earlier.aborts_validation,
            aborts_snapshot: self.aborts_snapshot - earlier.aborts_snapshot,
            aborts_user_retry: self.aborts_user_retry - earlier.aborts_user_retry,
            elastic_cuts: self.elastic_cuts - earlier.elastic_cuts,
            extensions: self.extensions - earlier.extensions,
            irrevocable_upgrades: self.irrevocable_upgrades - earlier.irrevocable_upgrades,
            irrevocable_commits: self.irrevocable_commits - earlier.irrevocable_commits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Abort;

    #[test]
    fn commit_and_abort_counting() {
        let s = StmStats::default();
        s.record_commit();
        s.record_commit();
        s.record_abort(Abort::ReadConflict { addr: 0 });
        s.record_abort(Abort::Locked { addr: 0, owner: 0 });
        s.record_abort(Abort::ValidationFailed { addr: 0 });
        let snap = s.snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.aborts(), 3);
        assert!((snap.abort_ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cancel_is_not_an_abort() {
        let s = StmStats::default();
        s.record_abort(Abort::Cancel);
        assert_eq!(s.snapshot().aborts(), 0);
    }

    #[test]
    fn cuts_extensions_and_upgrades() {
        let s = StmStats::default();
        s.record_cut(3);
        s.record_cut(0);
        s.record_extension();
        s.record_irrevocable_upgrade();
        s.record_irrevocable_commit();
        let snap = s.snapshot();
        assert_eq!(snap.elastic_cuts, 3);
        assert_eq!(snap.extensions, 1);
        assert_eq!(snap.irrevocable_upgrades, 1);
        assert_eq!(snap.irrevocable_commits, 1);
        assert_eq!(snap.commits, 1);
    }

    #[test]
    fn delta_and_reset() {
        let s = StmStats::default();
        s.record_commit();
        let first = s.snapshot();
        s.record_commit();
        s.record_abort(Abort::Retry);
        let second = s.snapshot();
        let d = second.delta_since(&first);
        assert_eq!(d.commits, 1);
        assert_eq!(d.aborts_user_retry, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn abort_ratio_of_empty_snapshot_is_zero() {
        assert_eq!(StatsSnapshot::default().abort_ratio(), 0.0);
    }
}
