//! The [`Stm`] instance: global clock, irrevocable-era gate,
//! configuration, statistics, and the `start(p)` entry points
//! [`Stm::run`] / [`Stm::try_run`].

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::advisor::{ClassId, RunTelemetry, SemanticsSource};
use crate::clock::GlobalClock;
use crate::cm::{ConflictArbiter, ContentionManager, TxMeta};
use crate::error::{Abort, Canceled, TxResult};
use crate::gate::IrrevGate;
use crate::redo::{CommitInfo, RedoSink};
use crate::semantics::{NestingPolicy, Semantics};
use crate::snapreg::SnapshotRegistry;
use crate::stats::{StatsSnapshot, StmStats};
use crate::trace::{self, TraceEvent};
use crate::tvar::{TVar, TxValue};
use crate::txn::{CommitReceipt, Transaction};

/// Tuning knobs of an [`Stm`] instance.
#[derive(Debug, Clone, Copy)]
pub struct StmConfig {
    /// *Floor* on the number of older versions each location retains
    /// behind its head (for [`Semantics::Snapshot`] transactions). 0
    /// disables the floor. Retention beyond the floor is driven by the
    /// snapshot registry's watermark: any version a live snapshot
    /// bound can still reach is kept regardless of depth, so this knob
    /// trades memory for how much history *idle* (unregistered)
    /// periods keep around, not for scan survivability.
    pub history_depth: usize,
    /// The contention manager.
    pub arbiter: ConflictArbiter,
    /// Composition policy applied by [`Transaction::nested`].
    pub nesting_policy: NestingPolicy,
    /// After this many aborted attempts, a transaction is upgraded to
    /// [`Semantics::Irrevocable`] so it is guaranteed to finish
    /// (liveness fallback). `None` disables the upgrade. Snapshot
    /// transactions are never upgraded (they retry with a fresh bound).
    pub irrevocable_fallback_after: Option<u32>,
}

impl Default for StmConfig {
    fn default() -> Self {
        Self {
            history_depth: 16,
            arbiter: ConflictArbiter::default(),
            nesting_policy: NestingPolicy::Strongest,
            irrevocable_fallback_after: Some(64),
        }
    }
}

/// Per-`run` parameters — the paper's `start(p)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxParams {
    /// The semantic parameter `p`. [`Default`] is the paper's `def`
    /// (opaque) semantics.
    pub semantics: Semantics,
    /// Transaction class this run belongs to, for the installed
    /// [`SemanticsSource`] (if any) to plan per-attempt parameters.
    /// `None` (the default) opts the run out of advice entirely: it
    /// runs under `semantics`, full stop.
    pub class: Option<ClassId>,
}

impl TxParams {
    /// `start(p)` with an explicit semantics.
    pub const fn new(semantics: Semantics) -> Self {
        Self { semantics, class: None }
    }

    /// The paper's `start(def)`.
    pub const fn default_semantics() -> Self {
        Self::new(Semantics::Opaque)
    }

    /// The paper's `start(weak)`.
    pub const fn weak() -> Self {
        Self::new(Semantics::elastic())
    }

    /// Tag the run with a transaction class; `semantics` becomes the
    /// *requested* semantics the installed advisor may override per
    /// attempt (and the fallback when its advice proves unusable). A
    /// plan can never weaken the run's requested discipline: a
    /// requested [`Semantics::Irrevocable`] stays irrevocable, a
    /// requested [`Semantics::Snapshot`] keeps its atomic view, a
    /// requested opaque class is never served elastic semantics, and
    /// an elastic request never has its window narrowed. The two
    /// moves a plan *may* make are strengthening (elastic → opaque →
    /// irrevocable) and switching a class to [`Semantics::Snapshot`]'s
    /// multi-versioned atomic view (a write under an injected snapshot
    /// re-runs under the requested semantics). A classed run may
    /// therefore be *strengthened* past snapshot, so a classed
    /// snapshot run must not rely on writes being rejected (under a
    /// strengthened plan a write commits instead of aborting with
    /// `ReadOnlyViolation`).
    pub const fn with_class(mut self, class: ClassId) -> Self {
        self.class = Some(class);
        self
    }
}

/// A polymorphic transactional memory instance.
///
/// All [`TVar`]s created through [`Stm::new_tvar`] share this instance's
/// global version clock; do not mix vars across instances (checked in
/// debug builds).
pub struct Stm {
    id: u64,
    clock: GlobalClock,
    gate: IrrevGate,
    snapreg: SnapshotRegistry,
    ts_source: AtomicU64,
    config: StmConfig,
    stats: StmStats,
    /// Installed per-attempt parameter source; consulted only for runs
    /// tagged with a [`ClassId`]. Fixed at construction so the hot path
    /// reads a plain field, not a synchronized cell.
    advisor: Option<Arc<dyn SemanticsSource>>,
    /// Installed commit-time redo sink (see `redo.rs`). Fixed at
    /// construction like the advisor, for the same hot-path reason.
    redo_sink: Option<Arc<dyn RedoSink>>,
}

impl std::fmt::Debug for Stm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stm")
            .field("id", &self.id)
            .field("config", &self.config)
            .field("advisor", &self.advisor.is_some())
            .finish_non_exhaustive()
    }
}

/// Source of unique [`Stm::id`]s for debug-mode TVar/Stm pairing checks.
static STM_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static IN_TRANSACTION: Cell<bool> = const { Cell::new(false) };
}

/// Resets the re-entrancy flag even if the user closure panics.
struct ReentrancyGuard;

impl ReentrancyGuard {
    fn enter() -> Self {
        IN_TRANSACTION.with(|f| {
            assert!(
                !f.get(),
                "Stm::run called inside a running transaction; use Transaction::nested \
                 for nested transactions"
            );
            f.set(true);
        });
        ReentrancyGuard
    }
}

impl Drop for ReentrancyGuard {
    fn drop(&mut self) {
        IN_TRANSACTION.with(|f| f.set(false));
    }
}

/// Spin politely: processor hint first, yielding to the OS scheduler
/// regularly so single-core hosts make progress.
#[inline]
pub(crate) fn polite_spin(spins: u32) {
    if spins.is_multiple_of(4) {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

impl Stm {
    /// New instance with default configuration.
    pub fn new() -> Self {
        Self::with_config(StmConfig::default())
    }

    /// New instance with explicit configuration.
    pub fn with_config(config: StmConfig) -> Self {
        Self {
            id: STM_IDS.fetch_add(1, Ordering::Relaxed),
            clock: GlobalClock::new(),
            gate: IrrevGate::new(),
            snapreg: SnapshotRegistry::new(),
            ts_source: AtomicU64::new(1),
            config,
            stats: StmStats::default(),
            advisor: None,
            redo_sink: None,
        }
    }

    /// New instance with an installed [`SemanticsSource`]: runs tagged
    /// with a [`ClassId`] (see [`TxParams::with_class`]) consult it
    /// before every attempt and report telemetry when they finish.
    /// Untagged runs behave exactly as on an advisor-free instance.
    pub fn with_advisor(config: StmConfig, advisor: Arc<dyn SemanticsSource>) -> Self {
        Self { advisor: Some(advisor), ..Self::with_config(config) }
    }

    /// New instance with an installed [`RedoSink`]: every committing
    /// transaction that staged redo bytes (see
    /// [`Transaction::stage_redo`]) hands them to the sink, stamped
    /// with its write version, before its writes become visible. Used
    /// by the durability layer (`polytm-durable`) to drive a write-ahead
    /// log off the commit path.
    pub fn with_redo_sink(config: StmConfig, sink: Arc<dyn RedoSink>) -> Self {
        Self { redo_sink: Some(sink), ..Self::with_config(config) }
    }

    /// The installed advisor, if any.
    pub fn advisor(&self) -> Option<&Arc<dyn SemanticsSource>> {
        self.advisor.as_ref()
    }

    /// The installed redo sink, if any.
    pub fn redo_sink(&self) -> Option<&Arc<dyn RedoSink>> {
        self.redo_sink.as_ref()
    }

    /// Unique instance id (used for debug-mode TVar pairing checks).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    pub(crate) fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    pub(crate) fn gate(&self) -> &IrrevGate {
        &self.gate
    }

    pub(crate) fn snapreg(&self) -> &SnapshotRegistry {
        &self.snapreg
    }

    pub(crate) fn raw_stats(&self) -> &StmStats {
        &self.stats
    }

    /// Current value of the global version clock.
    pub fn clock_now(&self) -> u64 {
        self.clock.now()
    }

    /// Advance the global version clock to at least `to` (see
    /// [`GlobalClock::catch_up`]). Recovery support for durability
    /// layers: call before admitting transactions on a freshly rebuilt
    /// instance, so new commits are stamped above every write version
    /// the previous incarnation persisted.
    pub fn catch_up_clock(&self, to: u64) {
        self.clock.catch_up(to);
    }

    /// Commit/abort statistics since creation (or the last
    /// [`Stm::reset_stats`]).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Zero all statistics counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Record durability work done on behalf of this instance's commits
    /// (the [`StatsSnapshot`] durability bucket). Called by the
    /// attached durability layer — typically once per group-commit
    /// batch: `commits` transactions made durable, by `batches` batches
    /// costing `fsyncs` fsync calls over `wal_bytes` appended bytes.
    pub fn record_durable(&self, commits: u64, batches: u64, fsyncs: u64, wal_bytes: u64) {
        self.stats.record_durable(commits, batches, fsyncs, wal_bytes);
    }

    /// Record nanoseconds a committer spent blocked on WAL durability
    /// (the [`StatsSnapshot::wal_wait_ns`] column). Called by the
    /// attached durability layer from its `wait_durable` path.
    pub fn record_wal_wait(&self, ns: u64) {
        self.stats.record_wal_wait(ns);
    }

    /// Create a [`TVar`] tagged to this instance, honouring the configured
    /// snapshot history depth.
    pub fn new_tvar<T: TxValue>(&self, value: T) -> TVar<T> {
        TVar::with_history(value, self.config.history_depth, self.id)
    }

    /// Run a transaction to commit — the paper's `start(p) … commit`.
    ///
    /// The closure may be executed several times (whenever the attempt
    /// aborts); it must be idempotent apart from its transactional reads
    /// and writes. Returns the closure's value from the committed attempt.
    ///
    /// # Panics
    /// Panics if the closure cancels (use [`Stm::try_run`] to allow
    /// cancellation), if called re-entrantly from inside a transaction, or
    /// if an irrevocable closure returns any error.
    pub fn run<T, F>(&self, params: TxParams, f: F) -> T
    where
        F: FnMut(&mut Transaction<'_>) -> TxResult<T>,
    {
        self.try_run(params, f)
            .expect("transaction cancelled; use Stm::try_run to permit cancellation")
    }

    /// Like [`Stm::run`], but the closure may cancel the transaction with
    /// [`Transaction::cancel`], which surfaces as `Err(Canceled)` with no
    /// effects published.
    pub fn try_run<T, F>(&self, params: TxParams, f: F) -> Result<T, Canceled>
    where
        F: FnMut(&mut Transaction<'_>) -> TxResult<T>,
    {
        self.try_run_logged(params, f).map(|(value, _)| value)
    }

    /// [`Stm::run`] plus the committed attempt's [`CommitInfo`] — its
    /// clock stamp and, when a [`RedoSink`] is installed and the
    /// closure staged redo bytes, the log sequence number the sink
    /// assigned. The durability layer uses the sequence number to wait
    /// for the commit to become durable *after* the transaction is
    /// over, keeping I/O off the lock-holding commit path.
    ///
    /// # Panics
    /// As [`Stm::run`].
    pub fn run_logged<T, F>(&self, params: TxParams, f: F) -> (T, CommitInfo)
    where
        F: FnMut(&mut Transaction<'_>) -> TxResult<T>,
    {
        self.try_run_logged(params, f)
            .expect("transaction cancelled; use Stm::try_run_logged to permit cancellation")
    }

    /// [`Stm::run_logged`] with cancellation, as [`Stm::try_run`].
    pub fn try_run_logged<T, F>(
        &self,
        params: TxParams,
        mut f: F,
    ) -> Result<(T, CommitInfo), Canceled>
    where
        F: FnMut(&mut Transaction<'_>) -> TxResult<T>,
    {
        let _reentrancy = ReentrancyGuard::enter();
        // One birth timestamp per run, threaded unchanged through every
        // attempt — including attempts upgraded to irrevocable semantics
        // — so contention-manager aging (Greedy, and the era gate's
        // age-ordered admission) keeps ordering the same transaction.
        let birth_ts = self.ts_source.fetch_add(1, Ordering::Relaxed);
        let requested = params.semantics;
        let advisor = match params.class {
            Some(_) => self.advisor.as_deref(),
            None => None,
        };
        let class = params.class.unwrap_or(ClassId(0));
        // Telemetry exists only when someone will observe it: unadvised
        // runs must not pay for per-abort cause accounting.
        let mut telemetry = advisor.map(|_| RunTelemetry::new(class, requested));
        let mut semantics = requested;
        let mut retries = 0u32;
        // One-way runtime overrides a per-attempt plan must not undo.
        let mut upgraded = false;
        let mut snapshot_rejected = false;
        // Tracing: the sink lookup is hoisted out of the attempt loop,
        // so an uninstalled sink costs one load per *run* and each emit
        // site below is a register test on a perfectly predicted branch.
        let tsink = trace::sink();
        let tclass = params.class.map_or(trace::NO_CLASS, |c| c.0);
        let trace_abort = |sem: Semantics, attempt_retries: u32, abort: Abort| {
            if let Some(t) = tsink {
                t.record(TraceEvent::new(
                    trace::code::TXN_ABORT,
                    abort.cause(sem).map_or(0, trace::cause_code),
                    tclass,
                    attempt_retries,
                    abort.addr().unwrap_or(0) as u64,
                    0,
                ));
            }
        };
        // Wait accounting for one finished attempt: stats always (the
        // adds are skipped when the attempt never waited, the common
        // case), span events only with a sink — emitted *before* the
        // attempt's commit/abort event so the span joiner sees an
        // attempt's waits ahead of its resolution on the same ring.
        let record_attempt_waits = |sem: Semantics, attempt_retries: u32, r: &CommitReceipt| {
            let gate_ns: u64 = r.wait_gate_ns.iter().sum();
            self.stats.record_waits(gate_ns, r.wait_arbitrate_ns, 0);
            if let Some(t) = tsink {
                for (site, &ns) in r.wait_gate_ns.iter().enumerate() {
                    if ns > 0 {
                        t.record(TraceEvent::new(
                            trace::code::WAIT_GATE,
                            site as u8,
                            tclass,
                            attempt_retries,
                            ns,
                            0,
                        ));
                    }
                }
                if r.wait_arbitrate_ns > 0 {
                    t.record(TraceEvent::new(
                        trace::code::WAIT_ARBITRATE,
                        trace::semantics_code(sem),
                        tclass,
                        attempt_retries,
                        r.wait_arbitrate_ns,
                        r.wait_arbitrate_addr,
                    ));
                }
            }
        };
        loop {
            let mut arbiter = self.config.arbiter;
            if let Some(src) = advisor {
                let plan = src.plan(class, retries, requested);
                if let Some(a) = plan.arbiter {
                    arbiter = a;
                }
                // A plan may never weaken the run's guarantees: a
                // caller-requested irrevocable run stays irrevocable
                // (its closure is written to execute exactly once), a
                // caller-requested snapshot keeps an atomic view (only
                // other single-critical-step semantics may replace it —
                // elastic would let the closure observe a torn cut), and
                // a runtime upgrade is one-way.
                if !upgraded && requested != Semantics::Irrevocable {
                    let atomic_view = matches!(
                        plan.semantics,
                        Semantics::Snapshot | Semantics::Opaque | Semantics::Irrevocable
                    );
                    // An injected Snapshot that already collided with a
                    // write in this run likewise falls back to the
                    // caller's requested semantics.
                    let rejected = snapshot_rejected && plan.semantics == Semantics::Snapshot;
                    semantics = if rejected || (requested == Semantics::Snapshot && !atomic_view) {
                        requested
                    } else {
                        match (plan.semantics, requested) {
                            // An elastic plan may not narrow the window
                            // the caller asked for: the requested window
                            // is part of the operation's correctness
                            // argument (tower- and probe-writing
                            // structures widen it), not a tuning knob
                            // the advisor owns.
                            (Semantics::Elastic { window }, Semantics::Elastic { window: req }) => {
                                Semantics::Elastic { window: window.max(req) }
                            }
                            // A plan may strengthen the request, or
                            // switch a class to Snapshot's atomic view
                            // (backstopped by the ReadOnlyViolation
                            // fallback below) — but never weaken the
                            // requested discipline: an elastic plan for
                            // a requested-opaque class would cut reads
                            // the caller's write safety depends on.
                            (planned, req)
                                if planned != Semantics::Snapshot
                                    && planned.strength() < req.strength() =>
                            {
                                req
                            }
                            (planned, _) => planned,
                        }
                    };
                    if semantics == Semantics::Irrevocable {
                        // Plan-directed escalation is an upgrade like any
                        // other: one-way, and accounted as one.
                        self.stats.record_irrevocable_upgrade();
                        upgraded = true;
                    }
                }
            }
            let meta = TxMeta { birth_ts, retries };
            // First attempts emit no begin event: the attempt is implied
            // by its own commit/abort event (which carries `retries`),
            // so the commit-on-first-try hot path pays for ONE ring push
            // per transaction, not two. Only re-attempts (retries > 0)
            // emit a begin — exactly the attempts whose existence an
            // analyzer cannot otherwise see until they resolve.
            if retries > 0 {
                if let Some(t) = tsink {
                    t.record(TraceEvent::new(
                        trace::code::TXN_BEGIN,
                        trace::semantics_code(semantics),
                        tclass,
                        retries,
                        0,
                        0,
                    ));
                }
            }
            let mut tx = Transaction::begin(self, semantics, meta, arbiter);
            let outcome = f(&mut tx);
            let abort = match outcome {
                Ok(value) => match tx.commit() {
                    Ok(receipt) => {
                        record_attempt_waits(semantics, retries, &receipt);
                        self.stats.record_cuts(receipt.cuts);
                        self.stats.record_extensions(receipt.extensions);
                        if semantics == Semantics::Irrevocable {
                            self.stats.record_irrevocable_commit();
                        } else {
                            self.stats.record_commit();
                        }
                        if let Some(t) = tsink {
                            let reads =
                                (receipt.live_reads + receipt.cuts).min(u64::from(u32::MAX));
                            let writes = receipt.writes.min(u64::from(u32::MAX));
                            t.record(TraceEvent::new(
                                trace::code::TXN_COMMIT,
                                trace::semantics_code(semantics),
                                tclass,
                                retries,
                                receipt.wv,
                                (reads << 32) | writes,
                            ));
                        }
                        if let (Some(src), Some(telemetry)) = (advisor, telemetry.as_mut()) {
                            telemetry.committed_semantics = semantics;
                            telemetry.retries = retries;
                            telemetry.upgraded = upgraded;
                            telemetry.reads = receipt.live_reads + receipt.cuts;
                            telemetry.writes = receipt.writes;
                            telemetry.wrote |= receipt.writes > 0;
                            src.observe(telemetry);
                        }
                        return Ok((value, CommitInfo { wv: receipt.wv, seq: receipt.log_seq }));
                    }
                    Err((abort, receipt)) => {
                        record_attempt_waits(semantics, retries, &receipt);
                        // The failed attempt's cuts/extensions are real
                        // work; account them like the abort path below.
                        self.stats.record_cuts(receipt.cuts);
                        self.stats.record_extensions(receipt.extensions);
                        if let Some(t) = telemetry.as_mut() {
                            t.wrote |= receipt.writes > 0;
                        }
                        abort
                    }
                },
                Err(abort) => {
                    if semantics == Semantics::Irrevocable {
                        // Irrevocable writes are already published; there
                        // is no way to honour any abort.
                        panic!(
                            "irrevocable transaction attempted to abort ({abort}); \
                             irrevocable closures must be infallible"
                        );
                    }
                    let receipt = tx.abort_receipt();
                    record_attempt_waits(semantics, retries, &receipt);
                    self.stats.record_cuts(receipt.cuts);
                    self.stats.record_extensions(receipt.extensions);
                    if let Some(t) = telemetry.as_mut() {
                        t.wrote |= receipt.writes > 0;
                    }
                    drop(tx);
                    match abort {
                        Abort::Cancel => {
                            self.stats.record_abort(Abort::Cancel, semantics);
                            return Err(Canceled);
                        }
                        Abort::RestartIrrevocable => {
                            // The restarted attempt is a real abort:
                            // account it (and report it to the advisor)
                            // before the one-way upgrade, or attempts
                            // stop summing to commits + aborts.
                            self.stats.record_abort(abort, semantics);
                            if let Some(t) = telemetry.as_mut() {
                                t.record_abort(abort, semantics);
                            }
                            trace_abort(semantics, retries, abort);
                            self.stats.record_irrevocable_upgrade();
                            semantics = Semantics::Irrevocable;
                            upgraded = true;
                            continue;
                        }
                        Abort::ReadOnlyViolation
                            if semantics == Semantics::Snapshot
                                && requested != Semantics::Snapshot =>
                        {
                            // The advisor assigned Snapshot to a class
                            // that writes: note the rejection (sticky for
                            // this run, reported in telemetry so the
                            // advisor learns) and re-run revocably under
                            // the requested semantics.
                            self.stats.record_abort(abort, semantics);
                            if let Some(t) = telemetry.as_mut() {
                                t.record_abort(abort, semantics);
                                t.wrote = true;
                                t.read_only_violation = true;
                            }
                            trace_abort(semantics, retries, abort);
                            snapshot_rejected = true;
                            retries = retries.saturating_add(1);
                            continue;
                        }
                        other => other,
                    }
                }
            };
            // Aborted attempt: account, back off, maybe upgrade, retry.
            self.stats.record_abort(abort, semantics);
            if let Some(t) = telemetry.as_mut() {
                t.record_abort(abort, semantics);
            }
            trace_abort(semantics, retries, abort);
            retries = retries.saturating_add(1);
            if let Some(limit) = self.config.irrevocable_fallback_after {
                if retries >= limit
                    && semantics != Semantics::Irrevocable
                    && semantics != Semantics::Snapshot
                {
                    self.stats.record_irrevocable_upgrade();
                    semantics = Semantics::Irrevocable;
                    upgraded = true;
                }
            }
            if let Some(d) = arbiter.backoff(retries) {
                if !d.is_zero() {
                    // Measure the actual sleep, not the requested
                    // duration — oversubscribed hosts oversleep, and the
                    // waterfall should show the time that really passed.
                    let backoff_start = std::time::Instant::now();
                    std::thread::sleep(d);
                    let slept_ns = backoff_start.elapsed().as_nanos() as u64;
                    self.stats.record_waits(0, 0, slept_ns);
                    if let Some(t) = tsink {
                        t.record(TraceEvent::new(
                            trace::code::WAIT_CLOCK,
                            trace::semantics_code(semantics),
                            tclass,
                            retries,
                            slept_ns,
                            0,
                        ));
                    }
                }
            }
        }
    }

    /// Convenience: run a read-only snapshot transaction.
    pub fn snapshot<T, F>(&self, f: F) -> T
    where
        F: FnMut(&mut Transaction<'_>) -> TxResult<T>,
    {
        self.run(TxParams::new(Semantics::Snapshot), f)
    }
}

impl Default for Stm {
    fn default() -> Self {
        Self::new()
    }
}
