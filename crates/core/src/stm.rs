//! The [`Stm`] instance: global clock, irrevocable-era gate,
//! configuration, statistics, and the `start(p)` entry points
//! [`Stm::run`] / [`Stm::try_run`].

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::clock::GlobalClock;
use crate::cm::{ConflictArbiter, ContentionManager, TxMeta};
use crate::error::{Abort, Canceled, TxResult};
use crate::gate::IrrevGate;
use crate::semantics::{NestingPolicy, Semantics};
use crate::stats::{StatsSnapshot, StmStats};
use crate::tvar::{TVar, TxValue};
use crate::txn::Transaction;

/// Tuning knobs of an [`Stm`] instance.
#[derive(Debug, Clone, Copy)]
pub struct StmConfig {
    /// Number of *older* versions each location retains behind its head
    /// (for [`Semantics::Snapshot`] transactions). 0 disables history.
    pub history_depth: usize,
    /// The contention manager.
    pub arbiter: ConflictArbiter,
    /// Composition policy applied by [`Transaction::nested`].
    pub nesting_policy: NestingPolicy,
    /// After this many aborted attempts, a transaction is upgraded to
    /// [`Semantics::Irrevocable`] so it is guaranteed to finish
    /// (liveness fallback). `None` disables the upgrade. Snapshot
    /// transactions are never upgraded (they retry with a fresh bound).
    pub irrevocable_fallback_after: Option<u32>,
}

impl Default for StmConfig {
    fn default() -> Self {
        Self {
            history_depth: 16,
            arbiter: ConflictArbiter::default(),
            nesting_policy: NestingPolicy::Strongest,
            irrevocable_fallback_after: Some(64),
        }
    }
}

/// Per-`run` parameters — the paper's `start(p)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxParams {
    /// The semantic parameter `p`. [`Default`] is the paper's `def`
    /// (opaque) semantics.
    pub semantics: Semantics,
}

impl TxParams {
    /// `start(p)` with an explicit semantics.
    pub const fn new(semantics: Semantics) -> Self {
        Self { semantics }
    }

    /// The paper's `start(def)`.
    pub const fn default_semantics() -> Self {
        Self { semantics: Semantics::Opaque }
    }

    /// The paper's `start(weak)`.
    pub const fn weak() -> Self {
        Self { semantics: Semantics::elastic() }
    }
}

/// A polymorphic transactional memory instance.
///
/// All [`TVar`]s created through [`Stm::new_tvar`] share this instance's
/// global version clock; do not mix vars across instances (checked in
/// debug builds).
#[derive(Debug)]
pub struct Stm {
    id: u64,
    clock: GlobalClock,
    gate: IrrevGate,
    ts_source: AtomicU64,
    config: StmConfig,
    stats: StmStats,
}

/// Source of unique [`Stm::id`]s for debug-mode TVar/Stm pairing checks.
static STM_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static IN_TRANSACTION: Cell<bool> = const { Cell::new(false) };
}

/// Resets the re-entrancy flag even if the user closure panics.
struct ReentrancyGuard;

impl ReentrancyGuard {
    fn enter() -> Self {
        IN_TRANSACTION.with(|f| {
            assert!(
                !f.get(),
                "Stm::run called inside a running transaction; use Transaction::nested \
                 for nested transactions"
            );
            f.set(true);
        });
        ReentrancyGuard
    }
}

impl Drop for ReentrancyGuard {
    fn drop(&mut self) {
        IN_TRANSACTION.with(|f| f.set(false));
    }
}

/// Spin politely: processor hint first, yielding to the OS scheduler
/// regularly so single-core hosts make progress.
#[inline]
pub(crate) fn polite_spin(spins: u32) {
    if spins.is_multiple_of(4) {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

impl Stm {
    /// New instance with default configuration.
    pub fn new() -> Self {
        Self::with_config(StmConfig::default())
    }

    /// New instance with explicit configuration.
    pub fn with_config(config: StmConfig) -> Self {
        Self {
            id: STM_IDS.fetch_add(1, Ordering::Relaxed),
            clock: GlobalClock::new(),
            gate: IrrevGate::new(),
            ts_source: AtomicU64::new(1),
            config,
            stats: StmStats::default(),
        }
    }

    /// Unique instance id (used for debug-mode TVar pairing checks).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The configuration this instance runs with.
    pub fn config(&self) -> &StmConfig {
        &self.config
    }

    pub(crate) fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    pub(crate) fn gate(&self) -> &IrrevGate {
        &self.gate
    }

    pub(crate) fn arbiter(&self) -> &ConflictArbiter {
        &self.config.arbiter
    }

    /// Current value of the global version clock.
    pub fn clock_now(&self) -> u64 {
        self.clock.now()
    }

    /// Commit/abort statistics since creation (or the last
    /// [`Stm::reset_stats`]).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Zero all statistics counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Create a [`TVar`] tagged to this instance, honouring the configured
    /// snapshot history depth.
    pub fn new_tvar<T: TxValue>(&self, value: T) -> TVar<T> {
        TVar::with_history(value, self.config.history_depth, self.id)
    }

    /// Run a transaction to commit — the paper's `start(p) … commit`.
    ///
    /// The closure may be executed several times (whenever the attempt
    /// aborts); it must be idempotent apart from its transactional reads
    /// and writes. Returns the closure's value from the committed attempt.
    ///
    /// # Panics
    /// Panics if the closure cancels (use [`Stm::try_run`] to allow
    /// cancellation), if called re-entrantly from inside a transaction, or
    /// if an irrevocable closure returns any error.
    pub fn run<T, F>(&self, params: TxParams, f: F) -> T
    where
        F: FnMut(&mut Transaction<'_>) -> TxResult<T>,
    {
        self.try_run(params, f)
            .expect("transaction cancelled; use Stm::try_run to permit cancellation")
    }

    /// Like [`Stm::run`], but the closure may cancel the transaction with
    /// [`Transaction::cancel`], which surfaces as `Err(Canceled)` with no
    /// effects published.
    pub fn try_run<T, F>(&self, params: TxParams, mut f: F) -> Result<T, Canceled>
    where
        F: FnMut(&mut Transaction<'_>) -> TxResult<T>,
    {
        let _reentrancy = ReentrancyGuard::enter();
        let birth_ts = self.ts_source.fetch_add(1, Ordering::Relaxed);
        let mut semantics = params.semantics;
        let mut retries = 0u32;
        loop {
            let meta = TxMeta { birth_ts, retries };
            let mut tx = Transaction::begin(self, semantics, meta);
            let outcome = f(&mut tx);
            let abort = match outcome {
                Ok(value) => match tx.commit() {
                    Ok(receipt) => {
                        self.stats.record_cuts(receipt.cuts);
                        self.stats.record_extensions(receipt.extensions);
                        if semantics == Semantics::Irrevocable {
                            self.stats.record_irrevocable_commit();
                        } else {
                            self.stats.record_commit();
                        }
                        return Ok(value);
                    }
                    Err(abort) => abort,
                },
                Err(abort) => {
                    if semantics == Semantics::Irrevocable {
                        // Irrevocable writes are already published; there
                        // is no way to honour any abort.
                        panic!(
                            "irrevocable transaction attempted to abort ({abort}); \
                             irrevocable closures must be infallible"
                        );
                    }
                    let receipt = tx.abort_receipt();
                    self.stats.record_cuts(receipt.cuts);
                    self.stats.record_extensions(receipt.extensions);
                    drop(tx);
                    match abort {
                        Abort::Cancel => {
                            self.stats.record_abort(Abort::Cancel);
                            return Err(Canceled);
                        }
                        Abort::RestartIrrevocable => {
                            self.stats.record_irrevocable_upgrade();
                            semantics = Semantics::Irrevocable;
                            continue;
                        }
                        other => other,
                    }
                }
            };
            // Aborted attempt: account, back off, maybe upgrade, retry.
            self.stats.record_abort(abort);
            retries = retries.saturating_add(1);
            if let Some(limit) = self.config.irrevocable_fallback_after {
                if retries >= limit
                    && semantics != Semantics::Irrevocable
                    && semantics != Semantics::Snapshot
                {
                    self.stats.record_irrevocable_upgrade();
                    semantics = Semantics::Irrevocable;
                }
            }
            if let Some(d) = self.config.arbiter.backoff(retries) {
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
            }
        }
    }

    /// Convenience: run a read-only snapshot transaction.
    pub fn snapshot<T, F>(&self, f: F) -> T
    where
        F: FnMut(&mut Transaction<'_>) -> TxResult<T>,
    {
        self.run(TxParams::new(Semantics::Snapshot), f)
    }
}

impl Default for Stm {
    fn default() -> Self {
        Self::new()
    }
}
