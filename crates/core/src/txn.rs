//! The transaction runtime: per-semantics read rules, lazy write sets,
//! elastic cutting, validation/extension, and the commit protocol.
//!
//! A [`Transaction`] is handed to the closure passed to
//! [`crate::Stm::run`]. It owns:
//!
//! * a **read set** — an append-only log of `(location, version-seen)`
//!   entries. Elastic transactions *cut* entries that slide out of their
//!   window (marking them dead) instead of validating them at commit;
//! * a **write set** — lazy, type-erased buffered writes, published
//!   atomically at commit under per-location versioned locks acquired in
//!   address order (deadlock-free);
//! * its **read version** `rv`, extensible on demand (revalidating all
//!   live reads against the current clock);
//! * the irrevocable-era ticket when running irrevocably.
//!
//! ## Hot-path design (see DESIGN.md §1)
//!
//! All growable state lives in a pooled `TxDescriptor` reused across
//! attempts and transactions (zero steady-state allocation); read
//! versions are sampled through the gate-free era double-check in
//! `gate.rs` (no RMW, no lock); the global clock is an Acquire/Release
//! CAS (no SeqCst); and the epoch pin is cached per transaction,
//! released around arbitrated waits so a stalled conflict never stalls
//! reclamation.

use std::mem::ManuallyDrop;
use std::sync::Arc;

use crossbeam_epoch as epoch;

use crate::cm::{ConflictArbiter, ConflictDecision, ContentionManager, TxMeta};
use crate::error::{Abort, TxResult};
use crate::gate::IrrevTicket;
use crate::semantics::{compose, NestingPolicy, Semantics};
use crate::stm::Stm;
use crate::tvar::TxValue;
use crate::txdesc::{
    stash_descriptor, take_descriptor, ReadEntry, TxDescriptor, WriteEntry, WritePayload,
};
use crate::varcore::{CommittedRead, TxSlot, VarCore};

/// How many reads between refreshes of the cached epoch pin (see
/// [`Transaction::pin`]).
const PIN_REFRESH_INTERVAL: u32 = 64;

/// An in-flight transaction attempt. See the module docs.
pub struct Transaction<'s> {
    stm: &'s Stm,
    semantics: Semantics,
    meta: TxMeta,
    /// Contention manager for this attempt: the configured arbiter, or
    /// the per-attempt override an installed advisor planned.
    arbiter: ConflictArbiter,
    rv: u64,
    /// Elastic cuts performed by this attempt (flushed to stats at end).
    cuts: u64,
    /// Read-version extensions performed by this attempt.
    extensions: u64,
    /// Eagerly published (irrevocable) writes — not in the write set,
    /// counted separately so receipts report true write activity.
    eager_writes: u64,
    /// Snapshot/irrevocable reads — not in the read set, counted
    /// separately so receipts report true read activity.
    direct_reads: u64,
    /// Pooled read/write sets and commit scratch; returned to the pool
    /// (cleared) by `Drop`.
    desc: ManuallyDrop<Box<TxDescriptor>>,
    /// Cached epoch pin: taken on first need, dropped around arbitrated
    /// waits (a parked transaction must not stall reclamation) and at
    /// the end of the attempt.
    guard: Option<epoch::Guard>,
    /// Snapshot reads since the cached pin was last refreshed (see
    /// [`Transaction::pin`]'s refresh rule; optimistic reads count via
    /// the read-set length in `push_read` instead).
    pin_uses: u32,
    /// Slot in the STM's snapshot registry protecting this
    /// transaction's read bound from version-chain truncation, when one
    /// was free. `None` for non-snapshot semantics, and for snapshot
    /// attempts that found the registry full (whose chain-walk misses
    /// report as capacity aborts).
    snap_slot: Option<usize>,
    /// Held for the whole transaction when running irrevocably; closes
    /// the era on drop (commit, abort and panic paths alike).
    era: Option<IrrevTicket<'s>>,
    /// Nanoseconds this attempt spent waiting at the era gate, indexed
    /// by gate site (`trace::GATE_SAMPLE_RV` / `GATE_ENTER_COMMIT` /
    /// `GATE_ENTER_IRREVOCABLE`). Zero on the no-contention path — the
    /// gate only reads a clock once it has actually had to wait.
    wait_gate_ns: [u64; 3],
    /// Nanoseconds spent in arbitrated lock waits (the `Wait` arm of
    /// [`Transaction::arbitrate_lock`]), summed over the attempt.
    wait_arbitrate_ns: u64,
    /// The last address an arbitrated wait contended on (0 = none).
    wait_arbitrate_addr: u64,
}

impl<'s> Transaction<'s> {
    pub(crate) fn begin(
        stm: &'s Stm,
        semantics: Semantics,
        meta: TxMeta,
        arbiter: ConflictArbiter,
    ) -> Self {
        let mut wait_gate_ns = [0u64; 3];
        let (rv, era, snap_slot) = if semantics == Semantics::Irrevocable {
            // Opening the era excludes other irrevocable transactions and
            // drains every in-flight writing commit, so the committed
            // state observed from here on is frozen: sample directly.
            // Admission is ordered by our birth timestamp, so an aged
            // (upgraded) transaction is not starved by younger ones.
            let ticket = stm.gate().enter_irrevocable(
                meta.birth_ts,
                &mut wait_gate_ns[crate::trace::GATE_ENTER_IRREVOCABLE as usize],
            );
            (stm.clock().now(), Some(ticket), None)
        } else if semantics == Semantics::Snapshot {
            // Protect the read bound from version-chain truncation
            // *before* sampling it: register a pre-sample of the clock,
            // then take rv (`>=` the registered bound, so everything rv
            // can reach, the registration protects). The registration's
            // SeqCst CAS + fence pairs with the committer-side watermark
            // fence — a committer that misses this slot is one whose
            // clock advance our rv already observed (snapreg.rs).
            let c0 = stm.clock().now();
            let snap_slot = stm.snapreg().register(c0);
            let rv = stm
                .gate()
                .sample_rv(stm.clock(), &mut wait_gate_ns[crate::trace::GATE_SAMPLE_RV as usize]);
            (rv, None, snap_slot)
        } else {
            // Gate-free begin: the era double-check guarantees rv never
            // lands inside an irrevocable eager-write window (gate.rs).
            let rv = stm
                .gate()
                .sample_rv(stm.clock(), &mut wait_gate_ns[crate::trace::GATE_SAMPLE_RV as usize]);
            (rv, None, None)
        };
        Self {
            stm,
            semantics,
            meta,
            arbiter,
            rv,
            cuts: 0,
            extensions: 0,
            eager_writes: 0,
            direct_reads: 0,
            desc: ManuallyDrop::new(take_descriptor()),
            guard: None,
            pin_uses: 0,
            snap_slot,
            era,
            wait_gate_ns,
            wait_arbitrate_ns: 0,
            wait_arbitrate_addr: 0,
        }
    }

    /// The semantics this transaction is currently executing under
    /// (changes inside [`Transaction::nested`] blocks).
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Read version: the clock value this transaction's reads are
    /// currently consistent with.
    pub fn read_version(&self) -> u64 {
        self.rv
    }

    /// Birth timestamp (stable across retries; used for contention
    /// priority).
    pub fn birth_ts(&self) -> u64 {
        self.meta.birth_ts
    }

    /// Number of elastic cuts performed so far in this attempt.
    pub fn cut_count(&self) -> u64 {
        self.cuts
    }

    /// Number of live (validated-at-commit) read-set entries.
    pub fn live_reads(&self) -> usize {
        self.desc.read_index.len()
    }

    /// Number of buffered writes.
    pub fn pending_writes(&self) -> usize {
        self.desc.writes.len()
    }

    /// Abort the current attempt and re-execute from the start (after the
    /// contention manager's backoff). Typical use: a condition the
    /// transaction needs is not yet true.
    pub fn retry<T>(&self) -> TxResult<T> {
        Err(Abort::Retry)
    }

    /// Cancel the transaction: [`crate::Stm::try_run`] returns
    /// [`crate::Canceled`] and no effects are published.
    ///
    /// Must not be used under [`Semantics::Irrevocable`] (whose writes are
    /// already public); the runtime panics in that case.
    pub fn cancel<T>(&self) -> TxResult<T> {
        Err(Abort::Cancel)
    }

    /// Stage redo bytes for the installed [`crate::RedoSink`]: if this
    /// attempt commits *and publishes writes*, the concatenation of all
    /// staged bytes is handed to the sink, stamped with the commit's
    /// write version, before the writes become visible (see `redo.rs`
    /// for the ordering contract). On abort or retry the staged bytes
    /// are discarded with the attempt — a re-executed closure stages
    /// from scratch — and a commit that publishes nothing (read-only,
    /// e.g. a delete of an absent key that stages conservatively) drops
    /// them too: no phantom log entries for no-op commits.
    ///
    /// The bytes are opaque to the runtime. No-op without an installed
    /// sink (the buffer still accumulates; callers that care should
    /// check [`crate::Stm::redo_sink`] first).
    pub fn stage_redo(&mut self, bytes: &[u8]) {
        self.desc.redo.extend_from_slice(bytes);
    }

    /// The cached epoch pin, taken lazily.
    ///
    /// The vendored epoch frees deferred garbage only when the global
    /// pin count is *observed at zero*, so a pin held for a whole long
    /// transaction (with other transactions overlapping it) could
    /// starve reclamation indefinitely. Long transactions therefore
    /// refresh the pin periodically — every [`PIN_REFRESH_INTERVAL`]th
    /// read-set entry (`push_read`) or snapshot read (`read_var`) —
    /// keeping ~1/64 of the seed's per-read pin cost while guaranteeing
    /// zero-pin windows keep opening for the collector. The refresh
    /// check lives on those already-slow paths so this accessor stays
    /// two instructions.
    #[inline]
    fn pin(&mut self) -> &epoch::Guard {
        if self.guard.is_none() {
            self.guard = Some(epoch::pin());
        }
        self.guard.as_ref().expect("just pinned")
    }

    /// Releases the cached pin (before waits and sleeps).
    #[inline]
    fn unpin(&mut self) {
        self.guard = None;
        self.pin_uses = 0;
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    pub(crate) fn read_var<T: TxValue>(&mut self, core: &Arc<VarCore<T>>) -> TxResult<T> {
        debug_assert!(
            core.stm_id == 0 || core.stm_id == self.stm.id(),
            "TVar used with an Stm instance other than the one that created it"
        );
        let addr = core.address();
        // Read-own-write.
        if let Some(idx) = self.desc.write_index.get(addr) {
            let value = self.desc.writes[idx as usize]
                .payload
                .get_ref::<T>()
                .expect("write-set value present outside commit");
            return Ok(value.clone());
        }
        match self.semantics {
            Semantics::Snapshot => {
                // Refresh the cached pin *before* this read begins, so
                // the guard taken for the chain walk below spans the
                // whole head-load-to-deref path — a refresh between
                // those two points could open a reclamation window
                // under a node the walk still holds.
                if self.pin_uses >= PIN_REFRESH_INTERVAL {
                    self.unpin();
                }
                self.pin_uses += 1;
                let rv = self.rv;
                // Wait-free against committers: a committer locks its
                // whole write set *before* taking its write version and
                // announces the version on every held lock right after
                // (pending_wv). If the announced wv > rv, the entire
                // commit serializes after our cut — every version
                // `<= rv` is already on the chain, frozen (later
                // commits only prepend strictly newer versions), so we
                // walk it without arbitrating. We only wait in the
                // sentinel window (locked, wv not yet announced) or
                // when wv <= rv (the committer's value belongs in our
                // cut but is not published yet); both waits stay
                // arbitrated so a leaked lock aborts us instead of
                // spinning forever. See DESIGN.md "MVCC read path" for
                // the ordering proof (including why an announced wv can
                // never be a stale leftover of an earlier committer).
                let mut spins = 0u32;
                loop {
                    let p = core.probe();
                    if !p.locked {
                        break;
                    }
                    let wv = core.pending_wv();
                    if wv != 0 && wv > rv {
                        break;
                    }
                    self.arbitrate_lock(addr, p.owner, &mut spins)?;
                }
                self.direct_reads += 1;
                match core.read_snapshot(rv, self.pin()) {
                    Some((v, _)) => Ok(v),
                    None => Err(self.snapshot_miss(addr)),
                }
            }
            Semantics::Irrevocable => {
                // The era is ours: no other transaction can commit, so
                // the committed state is frozen apart from our own
                // (already published) eager writes. `Locked` is
                // unreachable here: optimistic committers register with
                // the gate *before* taking any location lock and the
                // era open drained them all (gate.rs), none re-enter
                // while it stays open, other irrevocable transactions
                // are excluded by the era parity, and our own eager
                // writes release their lock before returning. Assert
                // that in debug builds; in release, arbitrate like
                // every other lock wait — the resulting abort trips the
                // "irrevocable closures must be infallible" panic in
                // stm.rs, which beats spinning forever on a leaked
                // lock.
                self.direct_reads += 1;
                let mut spins = 0u32;
                loop {
                    match core.read_committed(self.pin()) {
                        CommittedRead::Value(v, _) => return Ok(v),
                        CommittedRead::Locked(owner) => {
                            debug_assert!(
                                false,
                                "location {addr:#x} locked by {owner} during an irrevocable \
                                 read; the era grant should exclude all committers"
                            );
                            self.arbitrate_lock(addr, owner, &mut spins)?;
                        }
                    }
                }
            }
            Semantics::Opaque | Semantics::Elastic { .. } => self.read_optimistic(core, addr),
        }
    }

    fn read_optimistic<T: TxValue>(&mut self, core: &Arc<VarCore<T>>, addr: usize) -> TxResult<T> {
        if let Some(idx) = self.desc.read_index.get(addr) {
            // Re-read: the location must still carry the version we saw,
            // otherwise two reads of the same location would return
            // different values inside one transaction.
            let seen = self.desc.reads[idx as usize].seen;
            let (value, ver) = self.wait_read_committed(core, addr)?;
            return if ver == seen { Ok(value) } else { Err(Abort::ReadConflict { addr }) };
        }
        // Elastic cut rule (ε-STM): the critical-step window *includes*
        // the incoming access, so before validating the new read, shed the
        // oldest reads until at most `window - 1` previous reads remain.
        // Only legal before the first write.
        if let Semantics::Elastic { window } = self.semantics {
            if self.desc.writes.is_empty() {
                self.cut_to(window.max(1) - 1);
            }
        }
        let (mut value, mut ver) = self.wait_read_committed(core, addr)?;
        while ver > self.rv {
            // The location changed after we started: try to slide our
            // serialization point forward. Live reads must all still be
            // current; elastic transactions have already shed the reads
            // they are allowed to shed, so failure here is final.
            self.extend(addr)?;
            // The location may have been republished *between* the read
            // above and the extension's clock sample; admitting the
            // buffered value would let a commit with `wv == rv + 1` skip
            // validation over a stale read (a lost update). Re-read and
            // re-check against the extended rv.
            let (v, newer) = self.wait_read_committed(core, addr)?;
            value = v;
            ver = newer;
        }
        self.push_read(Arc::clone(core) as Arc<dyn TxSlot>, addr, ver);
        Ok(value)
    }

    /// Optimistically read a committed value, arbitrating with the
    /// contention manager while the location is locked by a committer.
    fn wait_read_committed<T: TxValue>(
        &mut self,
        core: &Arc<VarCore<T>>,
        addr: usize,
    ) -> TxResult<(T, u64)> {
        let mut spins = 0u32;
        loop {
            let owner = match core.read_committed(self.pin()) {
                CommittedRead::Value(v, ver) => return Ok((v, ver)),
                CommittedRead::Locked(owner) => owner,
            };
            self.arbitrate_lock(addr, owner, &mut spins)?;
        }
    }

    /// Classify a snapshot chain-walk miss. A registered bound is
    /// protected from truncation (snapreg.rs), so a miss *with* a slot
    /// means the bound predates the registration (a nested snapshot
    /// block registering mid-flight) — history genuinely unavailable. A
    /// miss *without* a slot means the registry was full: a resource
    /// capacity failure, reported distinctly so operators can tell
    /// "raise the slot count" from "history retention raced my scan".
    fn snapshot_miss(&self, addr: usize) -> Abort {
        if self.snap_slot.is_some() {
            Abort::SnapshotUnavailable { addr }
        } else {
            Abort::SnapshotCapacity { addr }
        }
    }

    /// One arbitration round against the transaction currently holding a
    /// location lock: either aborts this transaction
    /// ([`Abort::Locked`]) or backs off politely and lets the caller
    /// re-probe. Shared by every lock-wait loop in the runtime. Releases
    /// the cached epoch pin before waiting.
    fn arbitrate_lock(&mut self, addr: usize, owner: u64, spins: &mut u32) -> TxResult<()> {
        match self.arbiter.on_conflict(&self.meta, owner, *spins) {
            ConflictDecision::AbortSelf => Err(Abort::Locked { addr, owner }),
            ConflictDecision::Wait => {
                self.unpin();
                *spins += 1;
                // Already the contention slow path: two clock reads
                // around the spin are noise next to the wait itself, and
                // they are what make the waterfall's lock-wait component
                // measurable.
                let wait_start = std::time::Instant::now();
                crate::stm::polite_spin(*spins);
                self.wait_arbitrate_ns += wait_start.elapsed().as_nanos() as u64;
                self.wait_arbitrate_addr = addr as u64;
                Ok(())
            }
        }
    }

    /// Append a read-set entry; elastic reads also enter the cut window.
    fn push_read(&mut self, slot: Arc<dyn TxSlot>, addr: usize, seen: u64) {
        let idx = self.desc.reads.len() as u32;
        // Periodic pin refresh for long transactions (see `pin`): the
        // value for this read is already cloned, so the guard can lapse
        // here without extending any borrow.
        if (idx + 1).is_multiple_of(PIN_REFRESH_INTERVAL) {
            self.unpin();
        }
        self.desc.reads.push(ReadEntry { slot, addr, seen, dead: false });
        self.desc.read_index.insert(addr, idx);
        if let Semantics::Elastic { window } = self.semantics {
            if self.desc.writes.is_empty() {
                self.desc.window_queue.push_back(idx);
                // Invariant (defensive; `cut_to` already ran): at most
                // `window` live elastic reads.
                self.cut_to(window.max(1));
            }
        }
    }

    /// Mark the oldest cuttable reads dead until at most `keep` remain in
    /// the elastic window.
    fn cut_to(&mut self, keep: usize) {
        while self.desc.window_queue.len() > keep {
            let old = self.desc.window_queue.pop_front().expect("queue non-empty");
            let entry = &mut self.desc.reads[old as usize];
            entry.dead = true;
            let addr = entry.addr;
            self.desc.read_index.remove(addr);
            self.cuts += 1;
        }
    }

    /// Read-version extension: move `rv` to `now` if every live read is
    /// still current. `addr` is only for the error value.
    fn extend(&mut self, addr: usize) -> TxResult<()> {
        // Same rule as at begin: the extended read version must not land
        // inside an irrevocable eager-write window, so sample it through
        // the era double-check (waiting out any irrevocable transaction
        // in progress). When *this* transaction holds the era (a nested
        // optimistic block inside an irrevocable parent), no other
        // irrevocable transaction can be running — sample directly.
        let now = if self.era.is_some() {
            self.stm.clock().now()
        } else {
            // The sampler may spin behind an open era: release the pin
            // so the wait cannot stall epoch reclamation.
            self.unpin();
            let stm = self.stm;
            stm.gate().sample_rv(
                stm.clock(),
                &mut self.wait_gate_ns[crate::trace::GATE_SAMPLE_RV as usize],
            )
        };
        for entry in self.desc.reads.iter().filter(|e| !e.dead) {
            let p = entry.slot.probe();
            if p.locked || p.version != entry.seen {
                return Err(Abort::ReadConflict { addr: entry.addr });
            }
        }
        self.rv = now;
        self.extensions += 1;
        // Off the common path (extensions are conflict-driven), so the
        // un-hoisted emit's extra load is fine here. The run's class is
        // not visible this deep; the commit/abort event carries it.
        crate::trace::emit(|| {
            crate::trace::TraceEvent::new(
                crate::trace::code::TXN_EXTEND,
                crate::trace::semantics_code(self.semantics),
                crate::trace::NO_CLASS,
                self.extensions.min(u64::from(u32::MAX)) as u32,
                addr as u64,
                0,
            )
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    pub(crate) fn write_var<T: TxValue>(
        &mut self,
        core: &Arc<VarCore<T>>,
        value: T,
    ) -> TxResult<()> {
        debug_assert!(
            core.stm_id == 0 || core.stm_id == self.stm.id(),
            "TVar used with an Stm instance other than the one that created it"
        );
        if self.semantics.is_read_only() {
            return Err(Abort::ReadOnlyViolation);
        }
        let addr = core.address();
        if self.semantics == Semantics::Irrevocable {
            // An earlier nested revocable block may have buffered a write
            // to this location; this eager write is later in program
            // order and supersedes it (the emptied entry is skipped at
            // commit).
            if let Some(idx) = self.desc.write_index.remove(addr) {
                self.desc.writes[idx as usize].payload.dispose();
            }
            // Eager write: we hold the era, so every optimistic committer
            // was drained before our first read and none can re-enter —
            // the lock is free. Still, spin defensively.
            loop {
                match core.try_lock(self.meta.birth_ts) {
                    Ok(_prior) => break,
                    Err(_) => std::hint::spin_loop(),
                }
            }
            // Unique tick: each eager write needs its own version so
            // the era protocol's window `[wv1, wvk)` is well defined
            // (clock.rs). No pending_wv announcement here: the lock is
            // held only for the publish below (no validation phase), so
            // the sentinel window a concurrent snapshot reader can
            // observe is a few instructions wide — the arbitrated
            // fallback covers it.
            let wv = self.stm.clock().tick();
            let watermark = self.stm.snapreg().watermark(wv);
            core.publish_with(value, wv, watermark, self.pin());
            self.eager_writes += 1;
            return Ok(());
        }
        // Oversized payloads take the boxed slow path (allocation +
        // erased destructor per buffered write); count them so a hot
        // value type that misses the inline budget shows up in the
        // stats instead of silently costing an allocation per write.
        // The check is const-foldable per T: inline types pay nothing.
        if !crate::txdesc::fits_inline::<T>() {
            self.stm.raw_stats().record_boxed_write();
        }
        // First write freezes the elastic window: the remaining window
        // entries become permanent read-set entries, validated at commit.
        if self.desc.writes.is_empty() {
            self.desc.window_queue.clear();
        }
        match self.desc.write_index.get(addr) {
            Some(idx) => {
                self.desc.writes[idx as usize].payload = WritePayload::new(value);
            }
            None => {
                let idx = self.desc.writes.len() as u32;
                self.desc.writes.push(WriteEntry {
                    slot: Arc::clone(core) as Arc<dyn TxSlot>,
                    addr,
                    payload: WritePayload::new(value),
                });
                self.desc.write_index.insert(addr, idx);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Nesting
    // ------------------------------------------------------------------

    /// Run `f` as a nested transaction requesting `requested` semantics,
    /// composed with the parent semantics under the STM's configured
    /// [`NestingPolicy`] (see [`crate::StmConfig::nesting_policy`]).
    ///
    /// polytm uses *flattened closed nesting*: the nested block shares
    /// this transaction's read and write sets, and an abort restarts the
    /// whole flat transaction. What changes inside the block is the
    /// *read/cut discipline*: e.g. an elastic block inside an opaque
    /// parent may cut only the reads it performed itself.
    ///
    /// Requesting [`Semantics::Irrevocable`] inside a revocable parent
    /// cannot be honoured in place; the runtime aborts with
    /// [`Abort::RestartIrrevocable`] and [`crate::Stm::run`] restarts the
    /// whole transaction irrevocably.
    pub fn nested<T, F>(&mut self, requested: Semantics, f: F) -> TxResult<T>
    where
        F: FnOnce(&mut Transaction<'s>) -> TxResult<T>,
    {
        self.nested_with_policy(requested, self.stm.config().nesting_policy, f)
    }

    /// [`Transaction::nested`] with an explicit composition policy.
    pub fn nested_with_policy<T, F>(
        &mut self,
        requested: Semantics,
        policy: NestingPolicy,
        f: F,
    ) -> TxResult<T>
    where
        F: FnOnce(&mut Transaction<'s>) -> TxResult<T>,
    {
        let effective = compose(self.semantics, requested, policy);
        if effective == Semantics::Irrevocable && self.semantics != Semantics::Irrevocable {
            return Err(Abort::RestartIrrevocable);
        }
        if effective.is_read_only() && !self.desc.writes.is_empty() {
            // A snapshot block inside a writing transaction would not see
            // the transaction's own writes; run it opaquely instead. This
            // is the conservative resolution of the paper's composition
            // question for read-only semantics.
            return self.run_block(Semantics::Opaque, f);
        }
        self.run_block(effective, f)
    }

    fn run_block<T, F>(&mut self, effective: Semantics, f: F) -> TxResult<T>
    where
        F: FnOnce(&mut Transaction<'s>) -> TxResult<T>,
    {
        let saved = self.semantics;
        if effective == Semantics::Snapshot && self.snap_slot.is_none() {
            // A snapshot block inside an optimistic parent inherits a
            // bound sampled without registration. Register it now,
            // best-effort: truncation that already passed the bound is
            // not undone (misses report as unavailable, not capacity),
            // but from here on the bound is protected. The slot is
            // released with the transaction.
            self.snap_slot = self.stm.snapreg().register(self.rv);
        }
        // Reads made by the parent must never be cut by an elastic nested
        // block: start the block with an empty window. Conversely, when
        // the block ends, its window entries become permanent (the parent
        // may have stronger semantics).
        let saved_window = std::mem::take(&mut self.desc.window_queue);
        self.semantics = effective;
        let result = f(self);
        self.semantics = saved;
        self.desc.window_queue = saved_window;
        result
    }

    // ------------------------------------------------------------------
    // Commit / rollback
    // ------------------------------------------------------------------

    /// Attempt to commit. Consumes the attempt; on `Err` the caller
    /// re-executes the closure on a fresh [`Transaction`]. Both arms
    /// carry the attempt's receipt: the cuts and extensions of a failed
    /// commit are work that happened and must not vanish from the
    /// statistics.
    pub(crate) fn commit(mut self) -> Result<CommitReceipt, (Abort, CommitReceipt)> {
        let mut receipt = CommitReceipt {
            cuts: self.cuts,
            extensions: self.extensions,
            live_reads: self.desc.read_index.len() as u64 + self.direct_reads,
            writes: self.desc.writes.len() as u64 + self.eager_writes,
            wv: 0,
            log_seq: None,
            wait_gate_ns: [0; 3],
            wait_arbitrate_ns: 0,
            wait_arbitrate_addr: 0,
        };
        let outcome: Result<(), Abort> = match self.semantics {
            // Snapshot reads were consistent at rv by construction (and
            // can hold no buffered writes — writing is a
            // ReadOnlyViolation).
            Semantics::Snapshot => Ok(()),
            // The irrevocable transaction's own writes are already
            // published, but a nested *revocable* block (e.g. an elastic
            // traversal under NestingPolicy::Parameter) buffers its
            // writes like any optimistic code path; publish them now
            // rather than silently dropping them. We hold the era, so no
            // other transaction can hold a location lock (committers were
            // drained and stay out) and locking cannot contend.
            Semantics::Irrevocable => {
                if self.desc.writes.iter().any(|e| !e.payload.is_empty()) {
                    let wv = self.stm.clock().tick();
                    let watermark = self.stm.snapreg().watermark(wv);
                    if self.guard.is_none() {
                        self.guard = Some(epoch::pin());
                    }
                    let guard = self.guard.as_ref().expect("pinned above");
                    for entry in self.desc.writes.iter_mut() {
                        // Entries emptied by a later eager write to the
                        // same location are superseded; skip them.
                        if entry.payload.is_empty() {
                            continue;
                        }
                        while entry.slot.try_lock(self.meta.birth_ts).is_err() {
                            std::hint::spin_loop();
                        }
                        entry.slot.publish_payload(&mut entry.payload, wv, watermark, guard);
                    }
                }
                if receipt.writes > 0 {
                    // Stamp: the commit-time clock value bounds every
                    // eager write's tick from above, and the still-open
                    // era excludes every other committer, so enqueue
                    // order trivially respects the history here.
                    let stamp = self.stm.clock().now();
                    receipt.log_seq = self.append_redo(stamp);
                    receipt.wv = stamp;
                }
                Ok(())
            }
            Semantics::Opaque | Semantics::Elastic { .. } => {
                if self.desc.writes.is_empty() {
                    // Read-only optimistic transactions are consistent at
                    // their (possibly extended) read version; nothing to
                    // publish, nothing to validate (TL2 read-only rule).
                    // Any staged redo dies with the attempt: no writes,
                    // nothing to make durable.
                    Ok(())
                } else {
                    match self.commit_writes() {
                        Ok((wv, log_seq)) => {
                            receipt.wv = wv;
                            receipt.log_seq = log_seq;
                            Ok(())
                        }
                        Err(abort) => Err(abort),
                    }
                }
            }
        };
        // Filled after the arms: the commit path above may have waited
        // at the era gate or on location locks, and those nanoseconds
        // belong to this attempt's receipt on both outcomes.
        receipt.wait_gate_ns = self.wait_gate_ns;
        receipt.wait_arbitrate_ns = self.wait_arbitrate_ns;
        receipt.wait_arbitrate_addr = self.wait_arbitrate_addr;
        match outcome {
            Ok(()) => Ok(receipt),
            Err(abort) => Err((abort, receipt)),
        }
    }

    /// Hand staged redo bytes to the installed sink, stamped with
    /// `stamp`. Returns the sink-assigned sequence number, or `None`
    /// when there is no sink or nothing staged.
    fn append_redo(&self, stamp: u64) -> Option<u64> {
        if self.desc.redo.is_empty() {
            return None;
        }
        let sink = self.stm.redo_sink()?;
        Some(sink.append(stamp, &self.desc.redo))
    }

    fn commit_writes(&mut self) -> TxResult<(u64, Option<u64>)> {
        // Registration may spin for the whole duration of an open
        // irrevocable era (arbitrary user code): release the cached pin
        // first so a queued committer never stalls epoch reclamation.
        // The publish phase re-pins lazily.
        self.unpin();
        // Register as an in-flight writing commit, waiting out any
        // irrevocable era first. Registration precedes every per-location
        // lock, preserving the seed's gate -> locations lock order; the
        // ticket deregisters on drop (success and abort paths alike).
        let stm = self.stm;
        let _commit = stm
            .gate()
            .enter_commit(&mut self.wait_gate_ns[crate::trace::GATE_ENTER_COMMIT as usize]);

        // Commit scratch is pooled; take it out to sidestep overlapping
        // borrows of the descriptor, return it cleared below.
        let mut order = std::mem::take(&mut self.desc.order);
        let mut acquired = std::mem::take(&mut self.desc.acquired);
        let result = self.lock_validate_publish(&mut order, &mut acquired);
        order.clear();
        acquired.clear();
        self.desc.order = order;
        self.desc.acquired = acquired;
        result
    }

    fn lock_validate_publish(
        &mut self,
        order: &mut Vec<u32>,
        acquired: &mut Vec<(u32, u64)>,
    ) -> TxResult<(u64, Option<u64>)> {
        debug_assert!(order.is_empty() && acquired.is_empty());

        // Acquire write locks in address order (global total order =>
        // deadlock freedom even when the contention manager waits).
        order.extend(0..self.desc.writes.len() as u32);
        order.sort_unstable_by_key(|&i| self.desc.writes[i as usize].addr);
        for &i in order.iter() {
            let mut spins = 0u32;
            loop {
                let entry = &self.desc.writes[i as usize];
                match entry.slot.try_lock(self.meta.birth_ts) {
                    Ok(prior) => {
                        acquired.push((i, prior));
                        break;
                    }
                    Err(owner) => {
                        let addr = entry.addr;
                        if let Err(abort) = self.arbitrate_lock(addr, owner, &mut spins) {
                            self.release_acquired(acquired);
                            return Err(abort);
                        }
                    }
                }
            }
        }

        // Advance the clock (retried CAS, never adopted — clock.rs
        // explains why GV4 adoption is unsound under Acquire/Release):
        // our wv comes from our own RMW, restoring the TL2 guarantee
        // that readers with rv >= wv synchronize with our lock stores.
        let wv = self.stm.clock().advance();

        // Announce wv on every held lock immediately — before
        // validation, so the sentinel window snapshot readers must wait
        // out is just the lock-to-advance gap, not the whole validation
        // phase. `release_acquired` withdraws the announcements if
        // validation fails below.
        for &(i, _) in acquired.iter() {
            self.desc.writes[i as usize].slot.publish_wv(wv);
        }

        // Validate live reads. Locations we hold locks on are validated
        // against the pre-lock version returned by try_lock (`acquired`
        // is in address order, so the lookup is a binary search — no
        // per-commit map allocation). TL2 shortcut: wv == rv + 1 means
        // our own CAS was the only clock advance since rv, so no one
        // committed in between and the read set cannot have changed.
        if wv > self.rv + 1 {
            for entry in self.desc.reads.iter().filter(|e| !e.dead) {
                let lookup = acquired
                    .binary_search_by_key(&entry.addr, |&(i, _)| self.desc.writes[i as usize].addr);
                let current = match lookup {
                    Ok(pos) => acquired[pos].1,
                    Err(_) => {
                        let p = entry.slot.probe();
                        if p.locked {
                            self.release_acquired(acquired);
                            return Err(Abort::ValidationFailed { addr: entry.addr });
                        }
                        p.version
                    }
                };
                if current != entry.seen {
                    self.release_acquired(acquired);
                    return Err(Abort::ValidationFailed { addr: entry.addr });
                }
            }
        }

        // Truncation bound for the publishes below: the oldest live
        // registered snapshot bound, clamped to our own wv. Sampled
        // once per commit, after our clock advance (the SeqCst pairing
        // snapreg.rs relies on).
        let watermark = self.stm.snapreg().watermark(wv);

        // Hand staged redo bytes to the installed sink *here* — after
        // validation has succeeded (the commit is now certain) and
        // before any write publishes. Every location lock is still
        // held, so a transaction that later reads our writes can only
        // enqueue its own redo after ours: the sink's sequence order
        // respects every per-location serialization, and a durable
        // prefix of it is a prefix of the history (redo.rs). The sink
        // only stages into memory, so the added lock hold time is a
        // short critical section, not I/O.
        let log_seq = self.append_redo(wv);

        // Publish & unlock, pinned once for the whole batch.
        if self.guard.is_none() {
            self.guard = Some(epoch::pin());
        }
        let guard = self.guard.as_ref().expect("pinned above");
        for &(i, _) in acquired.iter() {
            let entry = &mut self.desc.writes[i as usize];
            entry.slot.publish_payload(&mut entry.payload, wv, watermark, guard);
        }
        Ok((wv, log_seq))
    }

    fn release_acquired(&self, acquired: &[(u32, u64)]) {
        for &(i, prior) in acquired.iter().rev() {
            self.desc.writes[i as usize].slot.unlock_restore(prior);
        }
    }

    /// Receipt counters for the statistics sink.
    pub(crate) fn abort_receipt(&self) -> CommitReceipt {
        CommitReceipt {
            cuts: self.cuts,
            extensions: self.extensions,
            live_reads: self.desc.read_index.len() as u64 + self.direct_reads,
            writes: self.desc.writes.len() as u64 + self.eager_writes,
            wv: 0,
            log_seq: None,
            wait_gate_ns: self.wait_gate_ns,
            wait_arbitrate_ns: self.wait_arbitrate_ns,
            wait_arbitrate_addr: self.wait_arbitrate_addr,
        }
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        // Unpin before recycling (clearing the descriptor can defer
        // nothing, but keep the pin's lifetime tight regardless).
        self.guard = None;
        // Stop protecting this attempt's read bound; a retry registers
        // its fresh bound in `begin`.
        if let Some(slot) = self.snap_slot.take() {
            self.stm.snapreg().release(slot);
        }
        // SAFETY: `desc` is never touched again — `drop` is the only
        // place that takes it, and it runs exactly once.
        let mut desc = unsafe { ManuallyDrop::take(&mut self.desc) };
        desc.clear();
        stash_descriptor(desc);
        // `era` (if any) drops after this body, closing the irrevocable
        // era even on panic unwind.
    }
}

/// Per-attempt counters reported back to [`crate::Stm`] for statistics
/// and advisor telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CommitReceipt {
    pub cuts: u64,
    pub extensions: u64,
    pub live_reads: u64,
    pub writes: u64,
    /// Clock stamp of the commit (see [`crate::CommitInfo::wv`]).
    pub wv: u64,
    /// Sequence number the redo sink assigned, if any.
    pub log_seq: Option<u64>,
    /// Era-gate wait nanoseconds by site (`trace::GATE_*` indices).
    pub wait_gate_ns: [u64; 3],
    /// Arbitrated lock-wait nanoseconds.
    pub wait_arbitrate_ns: u64,
    /// Last contended address of an arbitrated wait (0 = none).
    pub wait_arbitrate_addr: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::Suicide;

    /// A snapshot transaction whose arbiter aborts on the *first*
    /// conflict round: any `arbitrate_lock` call inside a read surfaces
    /// as `Err(Abort::Locked)`, so these tests distinguish "waited" from
    /// "wait-free" by the result alone.
    fn begin_suicide_snapshot(stm: &Stm) -> Transaction<'_> {
        Transaction::begin(
            stm,
            Semantics::Snapshot,
            TxMeta { birth_ts: 1, retries: 0 },
            ConflictArbiter::Suicide(Suicide),
        )
    }

    /// ISSUE 6 acceptance: a snapshot read of a slot locked by a
    /// committer that has announced `wv > rv` completes without calling
    /// `arbitrate_lock`.
    #[test]
    fn snapshot_read_of_future_committer_lock_is_wait_free() {
        let stm = Stm::new();
        let core = Arc::new(VarCore::new(7i64, 4, stm.id()));
        // Commit version 1, then advance the clock so a snapshot begun
        // now reads at rv = 2.
        core.try_lock(1).unwrap();
        core.publish(7, stm.clock().advance());
        stm.clock().advance();
        let mut tx = begin_suicide_snapshot(&stm);
        assert_eq!(tx.read_version(), 2);
        // An in-flight committer holds the lock and has announced a
        // write version above the snapshot's bound.
        core.try_lock(99).unwrap();
        TxSlot::publish_wv(&*core, 3);
        assert_eq!(tx.read_var(&core), Ok(7), "must read the pre-lock head without arbitrating");
        core.unlock_restore(1);
    }

    /// In the sentinel window (locked, no wv announced yet) the read
    /// still arbitrates — it cannot know which side of its cut the
    /// committer will land on.
    #[test]
    fn snapshot_read_arbitrates_in_the_sentinel_window() {
        let stm = Stm::new();
        let core = Arc::new(VarCore::new(7i64, 4, stm.id()));
        core.try_lock(1).unwrap();
        core.publish(7, stm.clock().advance());
        stm.clock().advance();
        let mut tx = begin_suicide_snapshot(&stm);
        core.try_lock(99).unwrap();
        assert_eq!(
            tx.read_var(&core),
            Err(Abort::Locked { addr: core.address(), owner: 99 }),
            "sentinel window must fall back to the arbitrated wait"
        );
        core.unlock_restore(1);
    }

    /// A committer whose announced wv falls inside the snapshot's cut
    /// (`wv <= rv`) must be waited out: its value belongs in the cut
    /// but is not published yet.
    #[test]
    fn snapshot_read_arbitrates_when_committer_is_inside_its_cut() {
        let stm = Stm::new();
        let core = Arc::new(VarCore::new(7i64, 4, stm.id()));
        core.try_lock(1).unwrap();
        core.publish(7, stm.clock().advance());
        stm.clock().advance();
        let mut tx = begin_suicide_snapshot(&stm);
        assert_eq!(tx.read_version(), 2);
        core.try_lock(99).unwrap();
        TxSlot::publish_wv(&*core, 2);
        assert_eq!(
            tx.read_var(&core),
            Err(Abort::Locked { addr: core.address(), owner: 99 }),
            "an announced wv <= rv belongs in the cut and must be waited for"
        );
        core.unlock_restore(1);
    }

    /// An unregistered snapshot (registry full) that misses the chain
    /// reports a capacity abort; a registered one reports unavailable.
    #[test]
    fn chain_miss_classification_tracks_registration() {
        let stm = Stm::new();
        let core = Arc::new(VarCore::new(0i64, 0, stm.id()));
        // Three commits at depth 0: only the head survives, so a bound
        // below it misses.
        for _ in 0..3 {
            core.try_lock(1).unwrap();
            core.publish(1, stm.clock().advance());
        }
        let mut registered = begin_suicide_snapshot(&stm);
        assert!(registered.snap_slot.is_some());
        registered.rv = 1; // force a bound below the retained head
        assert_eq!(
            registered.read_var(&core),
            Err(Abort::SnapshotUnavailable { addr: core.address() })
        );
        let mut unregistered = begin_suicide_snapshot(&stm);
        // Simulate a full registry at begin.
        if let Some(slot) = unregistered.snap_slot.take() {
            stm.snapreg().release(slot);
        }
        unregistered.rv = 1;
        assert_eq!(
            unregistered.read_var(&core),
            Err(Abort::SnapshotCapacity { addr: core.address() })
        );
    }
}
