//! The transaction runtime: per-semantics read rules, lazy write sets,
//! elastic cutting, validation/extension, and the commit protocol.
//!
//! A [`Transaction`] is handed to the closure passed to
//! [`crate::Stm::run`]. It owns:
//!
//! * a **read set** — an append-only log of `(location, version-seen)`
//!   entries. Elastic transactions *cut* entries that slide out of their
//!   window (marking them dead) instead of validating them at commit;
//! * a **write set** — lazy, type-erased buffered writes, published
//!   atomically at commit under per-location versioned locks acquired in
//!   address order (deadlock-free);
//! * its **read version** `rv`, extensible on demand (revalidating all
//!   live reads against the current clock);
//! * the revocation-gate guard when running irrevocably.

use std::any::Any;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam_epoch as epoch;
use parking_lot::RwLockWriteGuard;

use crate::cm::{ConflictDecision, ContentionManager, TxMeta};
use crate::error::{Abort, TxResult};
use crate::semantics::{compose, NestingPolicy, Semantics};
use crate::stm::Stm;
use crate::tvar::TxValue;
use crate::varcore::{CommittedRead, TxSlot, VarCore};

/// One read-set entry.
struct ReadEntry {
    slot: Arc<dyn TxSlot>,
    addr: usize,
    /// Version of the value observed.
    seen: u64,
    /// True once the entry has been elastically cut: it is no longer
    /// validated and no longer counts as "already read".
    dead: bool,
}

/// One buffered write.
struct WriteEntry {
    slot: Arc<dyn TxSlot>,
    addr: usize,
    /// `None` only transiently while the value is being published.
    value: Option<Box<dyn Any + Send>>,
}

/// An in-flight transaction attempt. See the module docs.
pub struct Transaction<'s> {
    stm: &'s Stm,
    semantics: Semantics,
    meta: TxMeta,
    rv: u64,
    reads: Vec<ReadEntry>,
    /// addr -> index into `reads`, live entries only.
    read_index: HashMap<usize, usize>,
    writes: Vec<WriteEntry>,
    /// addr -> index into `writes`.
    write_index: HashMap<usize, usize>,
    /// Indices into `reads` still eligible for elastic cutting, oldest
    /// first. Non-empty only for elastic transactions before their first
    /// write and outside nested blocks of different semantics.
    window_queue: VecDeque<usize>,
    /// Elastic cuts performed by this attempt (flushed to stats at end).
    cuts: u64,
    /// Read-version extensions performed by this attempt.
    extensions: u64,
    /// Held for the whole transaction when running irrevocably.
    _gate_guard: Option<RwLockWriteGuard<'s, ()>>,
}

impl<'s> Transaction<'s> {
    pub(crate) fn begin(stm: &'s Stm, semantics: Semantics, meta: TxMeta) -> Self {
        let gate_guard =
            if semantics == Semantics::Irrevocable { Some(stm.gate().write()) } else { None };
        // Sample rv *after* acquiring the gate so an irrevocable
        // transaction observes the final pre-gate state. Revocable
        // transactions sample rv under a *shared* gate acquisition: an
        // irrevocable transaction publishes each eager write at its own
        // write version, so a read version sampled in the middle of its
        // window would serialize between those writes and observe them
        // half-applied. Beginning mid-irrevocable instead waits the
        // irrevocable transaction out (it "serializes against all").
        let rv = if gate_guard.is_some() {
            stm.clock().now()
        } else {
            let _shared = stm.gate().read();
            stm.clock().now()
        };
        Self {
            stm,
            semantics,
            meta,
            rv,
            reads: Vec::new(),
            read_index: HashMap::new(),
            writes: Vec::new(),
            write_index: HashMap::new(),
            window_queue: VecDeque::new(),
            cuts: 0,
            extensions: 0,
            _gate_guard: gate_guard,
        }
    }

    /// The semantics this transaction is currently executing under
    /// (changes inside [`Transaction::nested`] blocks).
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Read version: the clock value this transaction's reads are
    /// currently consistent with.
    pub fn read_version(&self) -> u64 {
        self.rv
    }

    /// Birth timestamp (stable across retries; used for contention
    /// priority).
    pub fn birth_ts(&self) -> u64 {
        self.meta.birth_ts
    }

    /// Number of elastic cuts performed so far in this attempt.
    pub fn cut_count(&self) -> u64 {
        self.cuts
    }

    /// Number of live (validated-at-commit) read-set entries.
    pub fn live_reads(&self) -> usize {
        self.read_index.len()
    }

    /// Number of buffered writes.
    pub fn pending_writes(&self) -> usize {
        self.writes.len()
    }

    /// Abort the current attempt and re-execute from the start (after the
    /// contention manager's backoff). Typical use: a condition the
    /// transaction needs is not yet true.
    pub fn retry<T>(&self) -> TxResult<T> {
        Err(Abort::Retry)
    }

    /// Cancel the transaction: [`crate::Stm::try_run`] returns
    /// [`crate::Canceled`] and no effects are published.
    ///
    /// Must not be used under [`Semantics::Irrevocable`] (whose writes are
    /// already public); the runtime panics in that case.
    pub fn cancel<T>(&self) -> TxResult<T> {
        Err(Abort::Cancel)
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    pub(crate) fn read_var<T: TxValue>(&mut self, core: &Arc<VarCore<T>>) -> TxResult<T> {
        debug_assert!(
            core.stm_id == 0 || core.stm_id == self.stm.id(),
            "TVar used with an Stm instance other than the one that created it"
        );
        let addr = core.address();
        // Read-own-write.
        if let Some(&idx) = self.write_index.get(&addr) {
            let value = self.writes[idx]
                .value
                .as_ref()
                .expect("write-set value present outside commit")
                .downcast_ref::<T>()
                .expect("write-set entry type matches TVar type");
            return Ok(value.clone());
        }
        match self.semantics {
            Semantics::Snapshot => {
                // Wait out in-flight commits before walking the chain.
                // A committer locks its whole write set *before* taking
                // its write version, so a committer observed holding
                // this location's lock may have wv <= rv and its value
                // must be inside our cut; conversely, any locker that
                // arrives after we observe the location unlocked gets
                // wv > rv, which the bounded chain walk skips. Without
                // this wait a snapshot could see one location of a
                // commit and miss another (a torn cut). The wait is
                // arbitrated like every other lock wait: if the
                // contention manager says abort, the whole snapshot
                // retries with a fresh bound rather than spinning
                // unboundedly (or forever, on a leaked lock).
                let mut spins = 0u32;
                loop {
                    let p = core.probe();
                    if !p.locked {
                        break;
                    }
                    self.arbitrate_lock(addr, p.owner, &mut spins)?;
                }
                // Pin only after the wait: holding an epoch guard across
                // an arbitrated wait would stall reclamation globally.
                let guard = epoch::pin();
                match core.read_snapshot(self.rv, &guard) {
                    Some((v, _)) => Ok(v),
                    None => Err(Abort::SnapshotUnavailable { addr }),
                }
            }
            Semantics::Irrevocable => {
                // The gate is held exclusively: no other transaction can
                // commit, so the committed state is frozen apart from our
                // own (already published) eager writes.
                let guard = epoch::pin();
                loop {
                    match core.read_committed(&guard) {
                        CommittedRead::Value(v, _) => return Ok(v),
                        CommittedRead::Locked(_) => std::hint::spin_loop(),
                    }
                }
            }
            Semantics::Opaque | Semantics::Elastic { .. } => self.read_optimistic(core, addr),
        }
    }

    fn read_optimistic<T: TxValue>(&mut self, core: &Arc<VarCore<T>>, addr: usize) -> TxResult<T> {
        if let Some(&idx) = self.read_index.get(&addr) {
            // Re-read: the location must still carry the version we saw,
            // otherwise two reads of the same location would return
            // different values inside one transaction.
            let seen = self.reads[idx].seen;
            let (value, ver) = self.wait_read_committed(core, addr)?;
            return if ver == seen { Ok(value) } else { Err(Abort::ReadConflict { addr }) };
        }
        // Elastic cut rule (ε-STM): the critical-step window *includes*
        // the incoming access, so before validating the new read, shed the
        // oldest reads until at most `window - 1` previous reads remain.
        // Only legal before the first write.
        if let Semantics::Elastic { window } = self.semantics {
            if self.writes.is_empty() {
                self.cut_to(window.max(1) - 1);
            }
        }
        let (value, ver) = self.wait_read_committed(core, addr)?;
        if ver > self.rv {
            // The location changed after we started: try to slide our
            // serialization point forward. Live reads must all still be
            // current; elastic transactions have already shed the reads
            // they are allowed to shed, so failure here is final.
            self.extend(addr)?;
            debug_assert!(ver <= self.rv);
        }
        self.push_read(Arc::clone(core) as Arc<dyn TxSlot>, addr, ver);
        Ok(value)
    }

    /// Optimistically read a committed value, arbitrating with the
    /// contention manager while the location is locked by a committer.
    fn wait_read_committed<T: TxValue>(
        &self,
        core: &Arc<VarCore<T>>,
        addr: usize,
    ) -> TxResult<(T, u64)> {
        let guard = epoch::pin();
        let mut spins = 0u32;
        loop {
            match core.read_committed(&guard) {
                CommittedRead::Value(v, ver) => return Ok((v, ver)),
                CommittedRead::Locked(owner) => self.arbitrate_lock(addr, owner, &mut spins)?,
            }
        }
    }

    /// One arbitration round against the transaction currently holding a
    /// location lock: either aborts this transaction
    /// ([`Abort::Locked`]) or backs off politely and lets the caller
    /// re-probe. Shared by every lock-wait loop in the runtime.
    fn arbitrate_lock(&self, addr: usize, owner: u64, spins: &mut u32) -> TxResult<()> {
        match self.stm.arbiter().on_conflict(&self.meta, owner, *spins) {
            ConflictDecision::AbortSelf => Err(Abort::Locked { addr, owner }),
            ConflictDecision::Wait => {
                *spins += 1;
                crate::stm::polite_spin(*spins);
                Ok(())
            }
        }
    }

    /// Append a read-set entry; elastic reads also enter the cut window.
    fn push_read(&mut self, slot: Arc<dyn TxSlot>, addr: usize, seen: u64) {
        let idx = self.reads.len();
        self.reads.push(ReadEntry { slot, addr, seen, dead: false });
        self.read_index.insert(addr, idx);
        if let Semantics::Elastic { window } = self.semantics {
            if self.writes.is_empty() {
                self.window_queue.push_back(idx);
                // Invariant (defensive; `cut_to` already ran): at most
                // `window` live elastic reads.
                self.cut_to(window.max(1));
            }
        }
    }

    /// Mark the oldest cuttable reads dead until at most `keep` remain in
    /// the elastic window.
    fn cut_to(&mut self, keep: usize) {
        while self.window_queue.len() > keep {
            let old = self.window_queue.pop_front().expect("queue non-empty");
            let entry = &mut self.reads[old];
            entry.dead = true;
            self.read_index.remove(&entry.addr);
            self.cuts += 1;
        }
    }

    /// Read-version extension: move `rv` to `now` if every live read is
    /// still current. `addr` is only for the error value.
    fn extend(&mut self, _addr: usize) -> TxResult<()> {
        // Same rule as at begin: the extended read version must not land
        // between the eager writes of a running irrevocable transaction,
        // so sample it under a shared gate acquisition (waiting out any
        // irrevocable transaction in progress). When *this* transaction
        // holds the gate exclusively (a nested optimistic block inside
        // an irrevocable parent), no other irrevocable transaction can
        // be running and re-acquiring the non-reentrant gate would
        // self-deadlock — sample the clock directly.
        let now = if self._gate_guard.is_some() {
            self.stm.clock().now()
        } else {
            let _shared = self.stm.gate().read();
            self.stm.clock().now()
        };
        for entry in self.reads.iter().filter(|e| !e.dead) {
            let p = entry.slot.probe();
            if p.locked || p.version != entry.seen {
                return Err(Abort::ReadConflict { addr: entry.addr });
            }
        }
        self.rv = now;
        self.extensions += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    pub(crate) fn write_var<T: TxValue>(
        &mut self,
        core: &Arc<VarCore<T>>,
        value: T,
    ) -> TxResult<()> {
        debug_assert!(
            core.stm_id == 0 || core.stm_id == self.stm.id(),
            "TVar used with an Stm instance other than the one that created it"
        );
        if self.semantics.is_read_only() {
            return Err(Abort::ReadOnlyViolation);
        }
        let addr = core.address();
        if self.semantics == Semantics::Irrevocable {
            // An earlier nested revocable block may have buffered a write
            // to this location; this eager write is later in program
            // order and supersedes it (the emptied entry is skipped at
            // commit).
            if let Some(idx) = self.write_index.remove(&addr) {
                self.writes[idx].value = None;
            }
            // Eager write: we hold the gate, so the lock is at worst held
            // by a committer that entered before our gate acquisition —
            // impossible, since committers hold the gate (shared) across
            // their whole lock-publish window. Still, spin defensively.
            loop {
                match core.try_lock(self.meta.birth_ts) {
                    Ok(_prior) => break,
                    Err(_) => std::hint::spin_loop(),
                }
            }
            let wv = self.stm.clock().increment();
            core.publish(value, wv);
            return Ok(());
        }
        // First write freezes the elastic window: the remaining window
        // entries become permanent read-set entries, validated at commit.
        if self.writes.is_empty() {
            self.window_queue.clear();
        }
        match self.write_index.get(&addr) {
            Some(&idx) => {
                self.writes[idx].value = Some(Box::new(value));
            }
            None => {
                let idx = self.writes.len();
                self.writes.push(WriteEntry {
                    slot: Arc::clone(core) as Arc<dyn TxSlot>,
                    addr,
                    value: Some(Box::new(value)),
                });
                self.write_index.insert(addr, idx);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Nesting
    // ------------------------------------------------------------------

    /// Run `f` as a nested transaction requesting `requested` semantics,
    /// composed with the parent semantics under the STM's configured
    /// [`NestingPolicy`] (see [`crate::StmConfig::nesting_policy`]).
    ///
    /// polytm uses *flattened closed nesting*: the nested block shares
    /// this transaction's read and write sets, and an abort restarts the
    /// whole flat transaction. What changes inside the block is the
    /// *read/cut discipline*: e.g. an elastic block inside an opaque
    /// parent may cut only the reads it performed itself.
    ///
    /// Requesting [`Semantics::Irrevocable`] inside a revocable parent
    /// cannot be honoured in place; the runtime aborts with
    /// [`Abort::RestartIrrevocable`] and [`crate::Stm::run`] restarts the
    /// whole transaction irrevocably.
    pub fn nested<T, F>(&mut self, requested: Semantics, f: F) -> TxResult<T>
    where
        F: FnOnce(&mut Transaction<'s>) -> TxResult<T>,
    {
        self.nested_with_policy(requested, self.stm.config().nesting_policy, f)
    }

    /// [`Transaction::nested`] with an explicit composition policy.
    pub fn nested_with_policy<T, F>(
        &mut self,
        requested: Semantics,
        policy: NestingPolicy,
        f: F,
    ) -> TxResult<T>
    where
        F: FnOnce(&mut Transaction<'s>) -> TxResult<T>,
    {
        let effective = compose(self.semantics, requested, policy);
        if effective == Semantics::Irrevocable && self.semantics != Semantics::Irrevocable {
            return Err(Abort::RestartIrrevocable);
        }
        if effective.is_read_only() && !self.writes.is_empty() {
            // A snapshot block inside a writing transaction would not see
            // the transaction's own writes; run it opaquely instead. This
            // is the conservative resolution of the paper's composition
            // question for read-only semantics.
            return self.run_block(Semantics::Opaque, f);
        }
        self.run_block(effective, f)
    }

    fn run_block<T, F>(&mut self, effective: Semantics, f: F) -> TxResult<T>
    where
        F: FnOnce(&mut Transaction<'s>) -> TxResult<T>,
    {
        let saved = self.semantics;
        // Reads made by the parent must never be cut by an elastic nested
        // block: start the block with an empty window. Conversely, when
        // the block ends, its window entries become permanent (the parent
        // may have stronger semantics).
        let saved_window: VecDeque<usize> = std::mem::take(&mut self.window_queue);
        self.semantics = effective;
        let result = f(self);
        self.semantics = saved;
        self.window_queue = saved_window;
        result
    }

    // ------------------------------------------------------------------
    // Commit / rollback
    // ------------------------------------------------------------------

    /// Attempt to commit. Consumes the attempt; on `Err` the caller
    /// re-executes the closure on a fresh [`Transaction`].
    pub(crate) fn commit(mut self) -> TxResult<CommitReceipt> {
        let receipt = CommitReceipt {
            cuts: self.cuts,
            extensions: self.extensions,
            live_reads: self.read_index.len() as u64,
            writes: self.writes.len() as u64,
        };
        match self.semantics {
            // Snapshot reads were consistent at rv by construction (and
            // can hold no buffered writes — writing is a
            // ReadOnlyViolation).
            Semantics::Snapshot => Ok(receipt),
            // The irrevocable transaction's own writes are already
            // published, but a nested *revocable* block (e.g. an elastic
            // traversal under NestingPolicy::Parameter) buffers its
            // writes like any optimistic code path; publish them now
            // rather than silently dropping them. The gate is held
            // exclusively, so no other transaction can hold a location
            // lock (committers hold the gate shared across their whole
            // lock-publish window) and locking cannot contend.
            Semantics::Irrevocable => {
                if self.writes.iter().any(|e| e.value.is_some()) {
                    let wv = self.stm.clock().increment();
                    for entry in &mut self.writes {
                        // Entries emptied by a later eager write to the
                        // same location are superseded; skip them.
                        let Some(value) = entry.value.take() else { continue };
                        while entry.slot.try_lock(self.meta.birth_ts).is_err() {
                            std::hint::spin_loop();
                        }
                        entry.slot.publish_erased(value, wv);
                    }
                }
                Ok(receipt)
            }
            Semantics::Opaque | Semantics::Elastic { .. } => {
                if self.writes.is_empty() {
                    // Read-only optimistic transactions are consistent at
                    // their (possibly extended) read version; nothing to
                    // publish, nothing to validate (TL2 read-only rule).
                    return Ok(receipt);
                }
                self.commit_writes()?;
                Ok(receipt)
            }
        }
    }

    fn commit_writes(&mut self) -> TxResult<()> {
        // Block behind any irrevocable transaction; taken *before* any
        // per-location lock so lock order is gate -> locations everywhere.
        let _gate = self.stm.gate().read();

        // Acquire write locks in address order (global total order =>
        // deadlock freedom even when the contention manager waits).
        let mut order: Vec<usize> = (0..self.writes.len()).collect();
        order.sort_unstable_by_key(|&i| self.writes[i].addr);
        let mut acquired: Vec<(usize, u64)> = Vec::with_capacity(order.len());
        for &i in &order {
            let entry = &self.writes[i];
            let mut spins = 0u32;
            loop {
                match entry.slot.try_lock(self.meta.birth_ts) {
                    Ok(prior) => {
                        acquired.push((i, prior));
                        break;
                    }
                    Err(owner) => {
                        if let Err(abort) = self.arbitrate_lock(entry.addr, owner, &mut spins) {
                            self.release_acquired(&acquired);
                            return Err(abort);
                        }
                    }
                }
            }
        }

        let wv = self.stm.clock().increment();

        // Validate live reads. Locations we hold locks on are validated
        // against the pre-lock version returned by try_lock.
        if wv > self.rv + 1 {
            let prior_of: HashMap<usize, u64> =
                acquired.iter().map(|&(i, prior)| (self.writes[i].addr, prior)).collect();
            for entry in self.reads.iter().filter(|e| !e.dead) {
                let current = match prior_of.get(&entry.addr) {
                    Some(&prior) => prior,
                    None => {
                        let p = entry.slot.probe();
                        if p.locked {
                            self.release_acquired(&acquired);
                            return Err(Abort::ValidationFailed { addr: entry.addr });
                        }
                        p.version
                    }
                };
                if current != entry.seen {
                    self.release_acquired(&acquired);
                    return Err(Abort::ValidationFailed { addr: entry.addr });
                }
            }
        }

        // Publish & unlock.
        for &(i, _) in &acquired {
            let entry = &mut self.writes[i];
            let value = entry.value.take().expect("write value present at publish");
            entry.slot.publish_erased(value, wv);
        }
        Ok(())
    }

    fn release_acquired(&self, acquired: &[(usize, u64)]) {
        for &(i, prior) in acquired.iter().rev() {
            self.writes[i].slot.unlock_restore(prior);
        }
    }

    /// Receipt counters for the statistics sink.
    pub(crate) fn abort_receipt(&self) -> CommitReceipt {
        CommitReceipt {
            cuts: self.cuts,
            extensions: self.extensions,
            live_reads: self.read_index.len() as u64,
            writes: self.writes.len() as u64,
        }
    }
}

/// Per-attempt counters reported back to [`crate::Stm`] for statistics.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CommitReceipt {
    pub cuts: u64,
    pub extensions: u64,
    #[allow(dead_code)]
    pub live_reads: u64,
    #[allow(dead_code)]
    pub writes: u64,
}
