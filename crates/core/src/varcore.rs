//! Per-location state: versioned lock word plus an epoch-reclaimed,
//! bounded chain of immutable value versions.
//!
//! Layout of the lock word: `(version << 1) | locked`. While the lock bit
//! is set, the version bits still hold the *pre-lock* version, so readers
//! that race with a committing writer either observe a consistent
//! `(lockword, head, lockword)` triple or retry.
//!
//! Values are never mutated in place. A commit publishes a fresh
//! [`VersionNode`] and links the previous node behind it; the chain is
//! truncated to a configurable history depth, with severed nodes handed to
//! crossbeam-epoch for deferred destruction. This gives us three things at
//! once:
//!
//! 1. no `UnsafeCell` seqlock reads (which would be UB on torn reads) —
//!    every read dereferences an immutable node under an epoch guard;
//! 2. [`crate::Semantics::Snapshot`] transactions can read *into the
//!    past* along the chain;
//! 3. ABA-free unlocking: versions strictly increase.

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::tvar::TxValue;
use crate::txdesc::WritePayload;

const LOCKED: u64 = 1;

/// One committed version of a location's value.
pub(crate) struct VersionNode<T> {
    /// Commit timestamp (write version) that published this value.
    pub version: u64,
    /// The committed value.
    pub value: T,
    /// Next-older version, or null past the history horizon.
    pub prev: Atomic<VersionNode<T>>,
}

/// Decoded lock-word state returned by [`TxSlot::probe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlotProbe {
    pub locked: bool,
    /// Birth timestamp of the lock owner (valid while `locked`; 0 if the
    /// owner has not been recorded yet).
    pub owner: u64,
    /// Version carried by the lock word (the pre-lock version while
    /// locked).
    pub version: u64,
}

/// Outcome of an optimistic committed read.
pub(crate) enum CommittedRead<T> {
    /// Value and the version it was committed at.
    Value(T, u64),
    /// The location is currently locked by the transaction with the given
    /// birth timestamp.
    Locked(u64),
}

/// The shared core behind a [`crate::TVar`].
pub(crate) struct VarCore<T> {
    lockword: AtomicU64,
    owner: AtomicU64,
    /// Write version the current lock holder will publish at, or 0 while
    /// no committer has announced one (unlocked, or locked but the clock
    /// has not been advanced yet — the "acquiring" sentinel window).
    ///
    /// Snapshot readers holding bound `rv` use this to stay wait-free
    /// against committers: if the announced `wv > rv`, the committer's
    /// entire write set commits *after* the reader's cut, so the pre-lock
    /// chain already holds every version `<= rv` and the reader can walk
    /// it without arbitrating (see DESIGN.md "MVCC read path" for the
    /// ordering proof).
    pending_wv: AtomicU64,
    head: Atomic<VersionNode<T>>,
    /// Minimum number of versions retained behind the head (≥ 0). The
    /// head itself is always retained. Beyond this floor, retention is
    /// governed by the snapshot watermark passed to publish: versions a
    /// live snapshot bound could still reach are kept regardless of
    /// depth.
    history_depth: usize,
    /// Identifier of the [`crate::Stm`] this var is tagged to, or 0 for
    /// untagged vars. Mixing vars across STM instances breaks version
    /// ordering; the tag lets us catch it in debug builds.
    pub(crate) stm_id: u64,
}

impl<T: TxValue> VarCore<T> {
    pub(crate) fn new(value: T, history_depth: usize, stm_id: u64) -> Self {
        let node = Owned::new(VersionNode { version: 0, value, prev: Atomic::null() });
        Self {
            lockword: AtomicU64::new(0),
            owner: AtomicU64::new(0),
            pending_wv: AtomicU64::new(0),
            head: Atomic::from(node),
            history_depth,
            stm_id,
        }
    }

    /// Write version announced by the current lock holder, or 0 while
    /// none is announced (the sentinel). Acquire: pairs with the Release
    /// store in [`TxSlot::publish_wv`], so a reader that observes `wv`
    /// also observes every chain publication that happened before the
    /// announcing committer acquired its locks.
    #[inline]
    pub(crate) fn pending_wv(&self) -> u64 {
        self.pending_wv.load(Ordering::Acquire)
    }

    /// Stable identity of the location (used for write-set ordering and
    /// conflict reporting).
    #[inline]
    pub(crate) fn address(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Optimistic read of the latest committed value: the TL2
    /// `(lockword, value, lockword)` double-check. Returns the value and
    /// the version it was committed at, or the owner of the lock if the
    /// location is being committed to right now.
    pub(crate) fn read_committed(&self, guard: &Guard) -> CommittedRead<T> {
        loop {
            let l1 = self.lockword.load(Ordering::Acquire);
            if l1 & LOCKED != 0 {
                return CommittedRead::Locked(self.owner.load(Ordering::Relaxed));
            }
            let head = self.head.load(Ordering::Acquire, guard);
            let l2 = self.lockword.load(Ordering::Acquire);
            if l1 != l2 {
                continue;
            }
            // SAFETY: `head` was read under `guard`; nodes are only freed
            // via deferred destruction after being unlinked, so the
            // reference is valid for the lifetime of the pin.
            let node = unsafe { head.deref() };
            debug_assert_eq!(node.version, l1 >> 1, "head version must match lock word");
            return CommittedRead::Value(node.value.clone(), l1 >> 1);
        }
    }

    /// Multi-version read: newest committed version with
    /// `version <= bound`, walking the history chain. Returns `None` when
    /// the history has been truncated past `bound`.
    pub(crate) fn read_snapshot(&self, bound: u64, guard: &Guard) -> Option<(T, u64)> {
        let mut cur = self.head.load(Ordering::Acquire, guard);
        while !cur.is_null() {
            // SAFETY: chain nodes are epoch-protected (see above).
            let node = unsafe { cur.deref() };
            if node.version <= bound {
                return Some((node.value.clone(), node.version));
            }
            cur = node.prev.load(Ordering::Acquire, guard);
        }
        None
    }

    /// Publishes `value` as the new head version and releases the lock
    /// with `new_version`, retaining every version still reachable by a
    /// live snapshot (watermark `u64::MAX` = depth-only retention). Must
    /// be called while holding the lock. (Production paths publish
    /// through [`VarCore::publish_with`] with a cached guard; this
    /// convenience wrapper serves the unit tests.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn publish(&self, value: T, new_version: u64) {
        self.publish_with(value, new_version, u64::MAX, &epoch::pin());
    }

    /// [`VarCore::publish`] under a caller-supplied epoch guard, so a
    /// commit publishing many locations pins once instead of per
    /// location. `watermark` is the oldest live snapshot bound: versions
    /// above it, plus the newest version at or below it, stay reachable
    /// regardless of `history_depth`.
    pub(crate) fn publish_with(&self, value: T, new_version: u64, watermark: u64, guard: &Guard) {
        debug_assert!(self.lockword.load(Ordering::Relaxed) & LOCKED != 0);
        let old_head = self.head.load(Ordering::Relaxed, guard);
        let node = Owned::new(VersionNode { version: new_version, value, prev: Atomic::null() });
        node.prev.store(old_head, Ordering::Relaxed);
        self.head.store(node, Ordering::Release);
        self.truncate_history(watermark, guard);
        self.owner.store(0, Ordering::Relaxed);
        // Withdraw any announced write version *before* the lock word is
        // released: the Release store below orders this clear ahead of
        // the unlock for every reader that still observes the lock bit
        // (through the lock word's release sequence), so a stale wv can
        // never be attributed to a later lock holder.
        self.pending_wv.store(0, Ordering::Relaxed);
        self.lockword.store(new_version << 1, Ordering::Release);
    }

    /// Severs and defer-destroys chain nodes that are neither within the
    /// `history_depth` retention floor nor reachable by a snapshot bound
    /// `>= watermark`. A node is reachable by bound `b` iff it is the
    /// newest node with `version <= b`; so the retained set is the floor
    /// prefix, every node with `version > watermark`, and the newest
    /// node at or below the watermark. Caller must hold the lock (the
    /// chain is only mutated by lock holders, so the walk is race-free).
    fn truncate_history(&self, watermark: u64, guard: &Guard) {
        let mut kept = 0usize;
        // Set once the walk passes the newest node with
        // `version <= watermark` — everything older is unreachable by
        // any live snapshot bound.
        let mut crossed = false;
        let mut cur = self.head.load(Ordering::Relaxed, guard);
        while !cur.is_null() {
            // SAFETY: lock held; nodes reachable and epoch-protected.
            let node = unsafe { cur.deref() };
            let next = node.prev.load(Ordering::Relaxed, guard);
            if node.version <= watermark {
                crossed = true;
            }
            kept += 1;
            if kept > self.history_depth && crossed {
                if !next.is_null() {
                    node.prev.store(epoch::Shared::null(), Ordering::Release);
                    // Defer-destroy the severed suffix node by node.
                    let mut dead = next;
                    while !dead.is_null() {
                        // SAFETY: severed nodes are unreachable from the
                        // new chain; concurrent snapshot readers pinned
                        // before the severing may still hold them, which
                        // is exactly what deferred destruction protects.
                        let after = unsafe { dead.deref() }.prev.load(Ordering::Relaxed, guard);
                        unsafe { guard.defer_destroy(dead) };
                        dead = after;
                    }
                }
                return;
            }
            cur = next;
        }
    }
}

impl<T> Drop for VarCore<T> {
    fn drop(&mut self) {
        // SAFETY: we have exclusive access (`&mut self` through drop), so
        // no concurrent readers exist and the chain can be freed eagerly.
        unsafe {
            let guard = epoch::unprotected();
            let mut cur = self.head.load(Ordering::Relaxed, guard);
            while !cur.is_null() {
                let owned = cur.into_owned();
                cur = owned.prev.load(Ordering::Relaxed, guard);
                drop(owned);
            }
        }
    }
}

/// Object-safe view of a `VarCore<T>` used by the transaction runtime for
/// type-erased read/write sets.
pub(crate) trait TxSlot: Send + Sync {
    /// Decode the current lock word.
    fn probe(&self) -> SlotProbe;
    /// Try to acquire the commit lock for owner `owner_ts`. On success
    /// returns the pre-lock version; on failure the current owner's
    /// timestamp.
    fn try_lock(&self, owner_ts: u64) -> Result<u64, u64>;
    /// Release the lock without publishing (abort path), restoring the
    /// pre-lock version and withdrawing any announced write version.
    fn unlock_restore(&self, prior_version: u64);
    /// Announce the write version this lock holder will publish at, so
    /// snapshot readers with an older bound can walk the version chain
    /// without arbitrating. Must be called while holding the lock;
    /// cleared again by publish/`unlock_restore`.
    fn publish_wv(&self, wv: u64);
    /// Publish the buffered value in `payload` (leaving it empty) and
    /// release the lock with `new_version`, truncating history no deeper
    /// than the snapshot `watermark` allows.
    ///
    /// # Panics
    /// Panics if the payload is empty or does not hold the location's
    /// value type — impossible through the public API, which pairs
    /// write-set entries with the `TVar` that created them.
    fn publish_payload(
        &self,
        payload: &mut WritePayload,
        new_version: u64,
        watermark: u64,
        guard: &Guard,
    );
}

impl<T: TxValue> TxSlot for VarCore<T> {
    fn probe(&self) -> SlotProbe {
        let w = self.lockword.load(Ordering::Acquire);
        let locked = w & LOCKED != 0;
        SlotProbe {
            locked,
            // The owner word is only meaningful while locked; skipping
            // the load in the common unlocked case halves the cost of
            // the validation probes.
            owner: if locked { self.owner.load(Ordering::Relaxed) } else { 0 },
            version: w >> 1,
        }
    }

    fn try_lock(&self, owner_ts: u64) -> Result<u64, u64> {
        let cur = self.lockword.load(Ordering::Relaxed);
        if cur & LOCKED != 0 {
            return Err(self.owner.load(Ordering::Relaxed));
        }
        match self.lockword.compare_exchange(
            cur,
            cur | LOCKED,
            Ordering::Acquire,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                self.owner.store(owner_ts, Ordering::Relaxed);
                Ok(cur >> 1)
            }
            Err(_) => Err(self.owner.load(Ordering::Relaxed)),
        }
    }

    fn unlock_restore(&self, prior_version: u64) {
        debug_assert!(self.lockword.load(Ordering::Relaxed) & LOCKED != 0);
        self.owner.store(0, Ordering::Relaxed);
        // Sequenced before the Release unlock, like in `publish_with`:
        // covers the abort-after-announce path (validation failure after
        // the clock was advanced).
        self.pending_wv.store(0, Ordering::Relaxed);
        self.lockword.store(prior_version << 1, Ordering::Release);
    }

    fn publish_wv(&self, wv: u64) {
        debug_assert!(self.lockword.load(Ordering::Relaxed) & LOCKED != 0);
        debug_assert!(wv != 0, "write versions start at 1");
        // Release: a snapshot reader that Acquire-loads this value also
        // sees every chain publication ordered before our lock
        // acquisitions, which is what makes its unarbitrated chain walk
        // complete up to its bound (DESIGN.md "MVCC read path").
        self.pending_wv.store(wv, Ordering::Release);
    }

    fn publish_payload(
        &self,
        payload: &mut WritePayload,
        new_version: u64,
        watermark: u64,
        guard: &Guard,
    ) {
        let value = payload.take::<T>().expect("write payload present at publish");
        self.publish_with(value, new_version, watermark, guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_epoch as epoch;

    fn value_of(core: &VarCore<i64>) -> (i64, u64) {
        let guard = epoch::pin();
        match core.read_committed(&guard) {
            CommittedRead::Value(v, ver) => (v, ver),
            CommittedRead::Locked(_) => panic!("unexpected lock"),
        }
    }

    #[test]
    fn fresh_var_reads_initial_value_at_version_zero() {
        let core = VarCore::new(42i64, 4, 0);
        assert_eq!(value_of(&core), (42, 0));
    }

    #[test]
    fn lock_publish_unlock_cycle() {
        let core = VarCore::new(1i64, 4, 0);
        let prior = core.try_lock(7).expect("lock must succeed");
        assert_eq!(prior, 0);
        // Locked: probe reports owner, committed read reports lock.
        let p = core.probe();
        assert!(p.locked);
        assert_eq!(p.owner, 7);
        let guard = epoch::pin();
        match core.read_committed(&guard) {
            CommittedRead::Locked(owner) => assert_eq!(owner, 7),
            CommittedRead::Value(..) => panic!("must observe the lock"),
        }
        drop(guard);
        core.publish(2, 5);
        assert_eq!(value_of(&core), (2, 5));
        assert!(!core.probe().locked);
    }

    #[test]
    fn double_lock_fails_with_owner() {
        let core = VarCore::new(0i64, 4, 0);
        core.try_lock(3).unwrap();
        assert_eq!(core.try_lock(9), Err(3));
        core.unlock_restore(0);
        assert_eq!(core.try_lock(9), Ok(0));
        core.unlock_restore(0);
    }

    #[test]
    fn unlock_restore_keeps_version() {
        let core = VarCore::new(0i64, 4, 0);
        core.try_lock(1).unwrap();
        core.publish(10, 8);
        core.try_lock(2).unwrap();
        core.unlock_restore(8);
        assert_eq!(value_of(&core), (10, 8));
    }

    #[test]
    fn snapshot_walks_history() {
        let core = VarCore::new(0i64, 8, 0);
        for (v, ver) in [(1i64, 10u64), (2, 20), (3, 30)] {
            core.try_lock(1).unwrap();
            core.publish(v, ver);
        }
        let guard = epoch::pin();
        assert_eq!(core.read_snapshot(u64::MAX, &guard), Some((3, 30)));
        assert_eq!(core.read_snapshot(29, &guard), Some((2, 20)));
        assert_eq!(core.read_snapshot(20, &guard), Some((2, 20)));
        assert_eq!(core.read_snapshot(15, &guard), Some((1, 10)));
        assert_eq!(core.read_snapshot(9, &guard), Some((0, 0)));
    }

    #[test]
    fn history_truncation_bounds_the_chain() {
        let core = VarCore::new(0i64, 2, 0);
        for i in 1..=10u64 {
            core.try_lock(1).unwrap();
            core.publish(i as i64, i * 10);
        }
        let guard = epoch::pin();
        // head=100 plus history_depth=2 older versions (90, 80) retained.
        assert_eq!(core.read_snapshot(u64::MAX, &guard), Some((10, 100)));
        assert_eq!(core.read_snapshot(95, &guard), Some((9, 90)));
        assert_eq!(core.read_snapshot(85, &guard), Some((8, 80)));
        // anything older is gone
        assert_eq!(core.read_snapshot(75, &guard), None);
    }

    #[test]
    fn zero_history_keeps_only_head() {
        let core = VarCore::new(0i64, 0, 0);
        core.try_lock(1).unwrap();
        core.publish(1, 10);
        core.try_lock(1).unwrap();
        core.publish(2, 20);
        let guard = epoch::pin();
        assert_eq!(core.read_snapshot(u64::MAX, &guard), Some((2, 20)));
        assert_eq!(core.read_snapshot(19, &guard), None);
    }

    #[test]
    fn publish_payload_downcasts() {
        let core = VarCore::new(String::from("a"), 1, 0);
        core.try_lock(1).unwrap();
        let mut payload = WritePayload::new(String::from("b"));
        let guard = epoch::pin();
        TxSlot::publish_payload(&core, &mut payload, 3, u64::MAX, &guard);
        assert!(payload.is_empty(), "payload moved out at publish");
        match core.read_committed(&guard) {
            CommittedRead::Value(v, ver) => {
                assert_eq!(v, "b");
                assert_eq!(ver, 3);
            }
            CommittedRead::Locked(_) => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "write payload type must match")]
    fn publish_payload_wrong_type_panics() {
        let core = VarCore::new(0i64, 1, 0);
        core.try_lock(1).unwrap();
        let mut payload = WritePayload::new("wrong");
        let guard = epoch::pin();
        TxSlot::publish_payload(&core, &mut payload, 3, u64::MAX, &guard);
    }

    #[test]
    fn pending_wv_lifecycle_publish_and_abort() {
        let core = VarCore::new(0i64, 4, 0);
        assert_eq!(core.pending_wv(), 0, "fresh var has no announced wv");
        core.try_lock(1).unwrap();
        assert_eq!(core.pending_wv(), 0, "locking alone is the sentinel");
        TxSlot::publish_wv(&core, 9);
        assert_eq!(core.pending_wv(), 9);
        core.publish(1, 9);
        assert_eq!(core.pending_wv(), 0, "publish withdraws the announcement");
        core.try_lock(2).unwrap();
        TxSlot::publish_wv(&core, 12);
        core.unlock_restore(9);
        assert_eq!(core.pending_wv(), 0, "abort withdraws the announcement");
        assert_eq!(value_of(&core), (1, 9));
    }

    #[test]
    fn watermark_retains_versions_past_the_depth_floor() {
        let core = VarCore::new(0i64, 2, 0);
        let guard = epoch::pin();
        // A live snapshot bound of 15 forces retention of version 10
        // (the newest <= 15) no matter how deep the chain grows.
        for i in 1..=10u64 {
            core.try_lock(1).unwrap();
            core.publish_with(i as i64, i * 10, 15, &guard);
        }
        assert_eq!(core.read_snapshot(15, &guard), Some((1, 10)));
        // Everything between the watermark cut and the depth floor is
        // retained too (it is newer than the watermark).
        for i in 2..=10u64 {
            assert_eq!(core.read_snapshot(i * 10, &guard), Some((i as i64, i * 10)));
        }
        // ...but nothing older than the watermark cut survives.
        assert_eq!(core.read_snapshot(9, &guard), None);
    }

    #[test]
    fn watermark_above_head_reduces_to_depth_only_retention() {
        let core = VarCore::new(0i64, 2, 0);
        let guard = epoch::pin();
        for i in 1..=10u64 {
            core.try_lock(1).unwrap();
            // Watermark ahead of every version: nothing old is live.
            core.publish_with(i as i64, i * 10, 1_000, &guard);
        }
        assert_eq!(core.read_snapshot(u64::MAX, &guard), Some((10, 100)));
        assert_eq!(core.read_snapshot(95, &guard), Some((9, 90)));
        assert_eq!(core.read_snapshot(85, &guard), Some((8, 80)));
        assert_eq!(core.read_snapshot(75, &guard), None);
    }

    #[test]
    fn watermark_zero_retains_the_whole_chain() {
        let core = VarCore::new(0i64, 1, 0);
        let guard = epoch::pin();
        // A snapshot pinned before every publish keeps all history: the
        // initial version-0 node is the watermark cut and everything
        // newer stays.
        for i in 1..=6u64 {
            core.try_lock(1).unwrap();
            core.publish_with(i as i64, i * 10, 0, &guard);
        }
        for i in 1..=6u64 {
            assert_eq!(core.read_snapshot(i * 10, &guard), Some((i as i64, i * 10)));
        }
        assert_eq!(core.read_snapshot(0, &guard), Some((0, 0)));
    }
}
