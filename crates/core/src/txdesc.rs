//! Pooled, allocation-free transaction descriptors.
//!
//! The seed runtime allocated two SipHash `HashMap`s, two `Vec`s and a
//! `VecDeque` per transaction *attempt*, boxed every buffered write, and
//! rebuilt commit scratch (`order`/`acquired`/`prior_of`) per commit.
//! This module provides the reusable state behind a
//! [`crate::Transaction`]:
//!
//! * [`TxDescriptor`] — every growable buffer a transaction needs, kept
//!   in a thread-local pool ([`take_descriptor`]/[`stash_descriptor`])
//!   and reused across attempts and across transactions. The steady
//!   state performs **zero** heap allocation per transaction.
//! * [`AddrIndex`] — an open-addressed address→index map with an
//!   FxHash-style multiplicative hash and a linear-scan fast path for
//!   the small read/write sets that dominate real workloads.
//! * [`WritePayload`] — type-erased buffered write values with inline
//!   storage for payloads up to 3 machine words (counters, `Arc` nodes,
//!   small structs), falling back to boxing only for larger types.

use std::any::{Any, TypeId};
use std::cell::Cell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::Arc;

use crate::tvar::TxValue;
use crate::varcore::TxSlot;

// ---------------------------------------------------------------------
// WritePayload
// ---------------------------------------------------------------------

/// Inline storage: 3 words covers `u64`/`i64` counters, `Arc`/`Option
/// <Arc>` links, and small value structs, i.e. the payloads of every
/// structure in `polytm-structures`. Re-exported as
/// [`crate::INLINE_WRITE_WORDS`] so value types can be *designed* to
/// fit (see `polytm-kv`'s `Value`, which `Arc`-boxes large byte
/// payloads precisely to stay under this budget).
pub const INLINE_WRITE_WORDS: usize = 3;
const INLINE_BYTES: usize = INLINE_WRITE_WORDS * 8;

/// Does a buffered write of `T` use the descriptor's inline payload
/// storage? Re-exported as [`crate::write_payload_fits_inline`]; the
/// condition is the exact branch [`WritePayload::new`] takes, so a
/// `true` here guarantees the allocation-free inline path.
pub const fn fits_inline<T>() -> bool {
    size_of::<T>() <= INLINE_BYTES && align_of::<T>() <= align_of::<u64>()
}

enum PayloadState {
    /// No value (entry superseded by a later eager write, or already
    /// published).
    Empty,
    /// Value stored inline. `drop_fn` destroys it in place when the
    /// payload is discarded without being published.
    Inline {
        data: [MaybeUninit<u64>; INLINE_WRITE_WORDS],
        ty: TypeId,
        drop_fn: unsafe fn(*mut u64),
    },
    /// Value too large (or over-aligned) for inline storage.
    Boxed(Box<dyn Any + Send>),
}

/// A buffered write value. Small `T`s live inline (no allocation); the
/// value is dropped exactly once — either moved out by
/// [`WritePayload::take`] at publish, or destroyed in place when the
/// payload is overwritten/cleared (abort, retry, pool reuse).
pub(crate) struct WritePayload(PayloadState);

unsafe fn drop_erased<T>(p: *mut u64) {
    // SAFETY: caller guarantees `p` points at a live, properly aligned
    // `T` stored by `WritePayload::new::<T>`.
    unsafe { std::ptr::drop_in_place(p.cast::<T>()) }
}

impl WritePayload {
    /// Buffers `value`, inline when it fits.
    #[inline]
    pub(crate) fn new<T: TxValue>(value: T) -> Self {
        // Const-foldable per T: exactly one branch survives codegen.
        if fits_inline::<T>() {
            let mut data = [MaybeUninit::<u64>::uninit(); INLINE_WRITE_WORDS];
            // SAFETY: size/alignment checked above; `data` is writable
            // and exclusively ours.
            unsafe { std::ptr::write(data.as_mut_ptr().cast::<T>(), value) };
            WritePayload(PayloadState::Inline {
                data,
                ty: TypeId::of::<T>(),
                drop_fn: drop_erased::<T>,
            })
        } else {
            WritePayload(PayloadState::Boxed(Box::new(value)))
        }
    }

    /// True when no value is buffered (superseded entry).
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        matches!(self.0, PayloadState::Empty)
    }

    /// Borrows the buffered value for read-own-write.
    ///
    /// # Panics
    /// Panics on a type mismatch — impossible through the public API,
    /// which pairs write-set entries with the `TVar` that created them.
    #[inline]
    pub(crate) fn get_ref<T: TxValue>(&self) -> Option<&T> {
        match &self.0 {
            PayloadState::Empty => None,
            PayloadState::Inline { data, ty, .. } => {
                assert_eq!(*ty, TypeId::of::<T>(), "write payload type must match the TVar type");
                // SAFETY: type checked above; value live while Inline.
                Some(unsafe { &*data.as_ptr().cast::<T>() })
            }
            PayloadState::Boxed(b) => {
                Some(b.downcast_ref::<T>().expect("write payload type must match the TVar type"))
            }
        }
    }

    /// Moves the value out, leaving the payload empty.
    ///
    /// # Panics
    /// Panics on a type mismatch (see [`WritePayload::get_ref`]).
    #[inline]
    pub(crate) fn take<T: TxValue>(&mut self) -> Option<T> {
        match &mut self.0 {
            PayloadState::Empty => None,
            PayloadState::Inline { data, ty, .. } => {
                assert_eq!(*ty, TypeId::of::<T>(), "write payload type must match the TVar type");
                // SAFETY: type checked; `ptr::read` moves the value out,
                // and the overwrite below uses `ptr::write` so the
                // now-logically-dead Inline state is not re-dropped.
                let value = unsafe { std::ptr::read(data.as_ptr().cast::<T>()) };
                // SAFETY: overwriting the enum without running the old
                // state's drop glue — exactly what we need, since the
                // inline bytes were just moved out of.
                unsafe { std::ptr::write(&mut self.0, PayloadState::Empty) };
                Some(value)
            }
            PayloadState::Boxed(_) => {
                // PayloadState has no drop glue of its own (the Drop impl
                // lives on WritePayload), so plain moves are fine here.
                let PayloadState::Boxed(b) = std::mem::replace(&mut self.0, PayloadState::Empty)
                else {
                    unreachable!()
                };
                Some(*b.downcast::<T>().expect("write payload type must match the TVar type"))
            }
        }
    }

    /// Destroys any buffered value in place (supersede path).
    #[inline]
    pub(crate) fn dispose(&mut self) {
        match &mut self.0 {
            PayloadState::Empty => {}
            PayloadState::Inline { data, drop_fn, .. } => {
                let f = *drop_fn;
                let p = data.as_mut_ptr().cast::<u64>();
                // SAFETY: value is live while the state is Inline; the
                // overwrite below skips the old state's drop glue so it
                // is destroyed exactly once.
                unsafe {
                    f(p);
                    std::ptr::write(&mut self.0, PayloadState::Empty);
                }
            }
            PayloadState::Boxed(_) => {
                self.0 = PayloadState::Empty;
            }
        }
    }
}

impl Drop for WritePayload {
    fn drop(&mut self) {
        // Inline values need their erased destructor; a Boxed value is
        // freed by the ordinary field drop that follows this hook.
        if let PayloadState::Inline { data, drop_fn, .. } = &mut self.0 {
            // SAFETY: value live while Inline; dropped exactly once
            // because every move-out overwrites the state with Empty.
            unsafe { drop_fn(data.as_mut_ptr().cast::<u64>()) }
        }
    }
}

// ---------------------------------------------------------------------
// AddrIndex
// ---------------------------------------------------------------------

/// Below this size lookups linear-scan a dense `(addr, idx)` array —
/// faster than any hashing for the tiny sets most transactions build.
const SMALL_MAX: usize = 12;

/// Open-addressing markers. Location addresses are pointers to
/// `VarCore`s (aligned, heap-allocated), so 0 and 1 never collide with a
/// real key.
const EMPTY: usize = 0;
const TOMBSTONE: usize = 1;

/// Address → index map: small-mode linear scan, spilling to an
/// open-addressed table with FxHash-style multiplicative hashing.
/// Capacity is retained across [`AddrIndex::clear`] for pooled reuse.
pub(crate) struct AddrIndex {
    /// Dense pairs, authoritative while `table` is empty.
    small: Vec<(usize, u32)>,
    /// Open-addressed `(addr, idx)` slots; empty vec = small mode.
    table: Vec<(usize, u32)>,
    /// Live entries (small mode tracks via `small.len()`).
    len: usize,
    /// Tombstoned slots in `table`. Counted toward the rehash trigger:
    /// probe chains terminate only at EMPTY slots, so letting removals
    /// (elastic cuts) consume every EMPTY slot would make `get` of an
    /// absent key spin forever.
    tombs: usize,
}

impl AddrIndex {
    pub(crate) const fn new() -> Self {
        Self { small: Vec::new(), table: Vec::new(), len: 0, tombs: 0 }
    }

    #[inline]
    fn hash(addr: usize) -> usize {
        // Fibonacci/FxHash-style multiplicative mix; addresses are
        // aligned so the useful entropy is in the middle bits.
        addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17
    }

    /// Number of live entries.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        if self.table.is_empty() {
            self.small.len()
        } else {
            self.len
        }
    }

    #[inline]
    pub(crate) fn get(&self, addr: usize) -> Option<u32> {
        if self.table.is_empty() {
            return self.small.iter().find(|&&(a, _)| a == addr).map(|&(_, i)| i);
        }
        let mask = self.table.len() - 1;
        let mut slot = Self::hash(addr) & mask;
        loop {
            let (a, i) = self.table[slot];
            if a == addr {
                return Some(i);
            }
            if a == EMPTY {
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Inserts a new key (caller guarantees `addr` is absent).
    #[inline]
    pub(crate) fn insert(&mut self, addr: usize, idx: u32) {
        debug_assert!(self.get(addr).is_none(), "insert of an existing address");
        if self.table.is_empty() {
            if self.small.len() < SMALL_MAX {
                self.small.push((addr, idx));
                return;
            }
            self.spill();
        }
        // Tombstones count toward occupancy: at least half the slots
        // must stay EMPTY so every probe chain terminates.
        if (self.len + self.tombs + 1) * 2 > self.table.len() {
            self.rehash();
        }
        if Self::raw_insert(&mut self.table, addr, idx) {
            self.tombs -= 1;
        }
        self.len += 1;
    }

    /// Removes a key; returns its index if present.
    #[inline]
    pub(crate) fn remove(&mut self, addr: usize) -> Option<u32> {
        if self.table.is_empty() {
            let pos = self.small.iter().position(|&(a, _)| a == addr)?;
            return Some(self.small.swap_remove(pos).1);
        }
        let mask = self.table.len() - 1;
        let mut slot = Self::hash(addr) & mask;
        loop {
            let (a, i) = self.table[slot];
            if a == addr {
                self.table[slot] = (TOMBSTONE, 0);
                self.len -= 1;
                self.tombs += 1;
                return Some(i);
            }
            if a == EMPTY {
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Empties the index, retaining capacity (pool hygiene: no stale
    /// entries survive into the next attempt).
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.small.clear();
        // Drop the spilled table to length 0 but keep its capacity; the
        // next spill re-zeroes it with `resize`.
        self.table.clear();
        self.len = 0;
        self.tombs = 0;
    }

    /// Returns true when the insert reused a tombstoned slot.
    fn raw_insert(table: &mut [(usize, u32)], addr: usize, idx: u32) -> bool {
        let mask = table.len() - 1;
        let mut slot = Self::hash(addr) & mask;
        loop {
            let a = table[slot].0;
            if a == EMPTY || a == TOMBSTONE {
                table[slot] = (addr, idx);
                return a == TOMBSTONE;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// First spill out of small mode.
    #[cold]
    fn spill(&mut self) {
        let cap = (SMALL_MAX * 4).next_power_of_two();
        self.table.resize(cap, (EMPTY, 0));
        self.len = 0;
        self.tombs = 0;
        for i in 0..self.small.len() {
            let (a, idx) = self.small[i];
            Self::raw_insert(&mut self.table, a, idx);
            self.len += 1;
        }
        self.small.clear();
    }

    /// Rebuilds the table, sweeping tombstones; capacity is sized to the
    /// *live* count (a long elastic traversal churns entries through a
    /// small window — live stays tiny while tombstones accumulate, and
    /// the rebuild must not double forever on tombstone pressure).
    #[cold]
    fn rehash(&mut self) {
        let min_cap = (SMALL_MAX * 4).next_power_of_two();
        let cap = ((self.len + 1) * 4).next_power_of_two().max(min_cap);
        let old = std::mem::take(&mut self.table);
        self.table = vec![(EMPTY, 0); cap];
        self.tombs = 0;
        for (a, i) in old {
            if a != EMPTY && a != TOMBSTONE {
                Self::raw_insert(&mut self.table, a, i);
            }
        }
    }
}

// ---------------------------------------------------------------------
// TxDescriptor
// ---------------------------------------------------------------------

/// One read-set entry.
pub(crate) struct ReadEntry {
    pub(crate) slot: Arc<dyn TxSlot>,
    pub(crate) addr: usize,
    /// Version of the value observed.
    pub(crate) seen: u64,
    /// True once the entry has been elastically cut: it is no longer
    /// validated and no longer counts as "already read".
    pub(crate) dead: bool,
}

/// One buffered write.
pub(crate) struct WriteEntry {
    pub(crate) slot: Arc<dyn TxSlot>,
    pub(crate) addr: usize,
    /// Empty only for entries superseded by a later eager write, and
    /// transiently while the value is being published.
    pub(crate) payload: WritePayload,
}

/// All growable per-transaction state, pooled per thread and reused
/// across attempts and transactions.
#[derive(Default)]
pub(crate) struct TxDescriptor {
    pub(crate) reads: Vec<ReadEntry>,
    pub(crate) read_index: AddrIndex,
    pub(crate) writes: Vec<WriteEntry>,
    pub(crate) write_index: AddrIndex,
    /// Indices into `reads` still eligible for elastic cutting, oldest
    /// first.
    pub(crate) window_queue: VecDeque<u32>,
    /// Commit scratch: write indices in address order.
    pub(crate) order: Vec<u32>,
    /// Commit scratch: `(write index, pre-lock version)` of every lock
    /// held, in acquisition (= address) order.
    pub(crate) acquired: Vec<(u32, u64)>,
    /// Redo bytes staged by [`crate::Transaction::stage_redo`] for the
    /// installed [`crate::RedoSink`], appended to the log if (and only
    /// if) this attempt commits. Cleared with the rest of the
    /// descriptor between attempts, so a retried closure restages from
    /// scratch.
    pub(crate) redo: Vec<u8>,
}

impl Default for AddrIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl TxDescriptor {
    /// Drops all buffered state (read-set `Arc`s, write payloads, commit
    /// scratch), retaining every buffer's capacity for reuse.
    pub(crate) fn clear(&mut self) {
        self.reads.clear();
        self.read_index.clear();
        self.writes.clear();
        self.write_index.clear();
        self.window_queue.clear();
        self.order.clear();
        self.acquired.clear();
        self.redo.clear();
    }

    /// Pool-hygiene check: true when no state survives from a previous
    /// use.
    pub(crate) fn is_pristine(&self) -> bool {
        self.reads.is_empty()
            && self.read_index.len() == 0
            && self.writes.is_empty()
            && self.write_index.len() == 0
            && self.window_queue.is_empty()
            && self.order.is_empty()
            && self.acquired.is_empty()
            && self.redo.is_empty()
    }
}

thread_local! {
    /// One descriptor parked per thread between transactions. A nested
    /// `Stm::run` is rejected by the re-entrancy guard, so one slot is
    /// enough; if a second descriptor ever races the slot it is simply
    /// dropped (correct, merely unpooled).
    static DESC_POOL: Cell<Option<Box<TxDescriptor>>> = const { Cell::new(None) };
}

/// Takes the thread's pooled descriptor (or builds a fresh one).
#[inline]
pub(crate) fn take_descriptor() -> Box<TxDescriptor> {
    let desc = DESC_POOL.with(Cell::take).unwrap_or_default();
    debug_assert!(desc.is_pristine(), "pooled descriptor must be cleared before stashing");
    desc
}

/// Returns a cleared descriptor to the thread's pool.
#[inline]
pub(crate) fn stash_descriptor(desc: Box<TxDescriptor>) {
    debug_assert!(desc.is_pristine(), "descriptor must be cleared before stashing");
    DESC_POOL.with(|p| p.set(Some(desc)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn addr_index_small_mode_roundtrip() {
        let mut ix = AddrIndex::new();
        for i in 0..SMALL_MAX {
            ix.insert(16 * (i + 1), i as u32);
        }
        assert_eq!(ix.len(), SMALL_MAX);
        for i in 0..SMALL_MAX {
            assert_eq!(ix.get(16 * (i + 1)), Some(i as u32));
        }
        assert_eq!(ix.get(8), None);
        assert_eq!(ix.remove(16), Some(0));
        assert_eq!(ix.get(16), None);
        assert_eq!(ix.len(), SMALL_MAX - 1);
    }

    #[test]
    fn addr_index_spills_and_grows() {
        let mut ix = AddrIndex::new();
        let n = 1000usize;
        for i in 0..n {
            ix.insert(16 * (i + 1), i as u32);
        }
        assert_eq!(ix.len(), n);
        for i in 0..n {
            assert_eq!(ix.get(16 * (i + 1)), Some(i as u32), "key {i}");
        }
        // Remove half, re-check the rest.
        for i in (0..n).step_by(2) {
            assert_eq!(ix.remove(16 * (i + 1)), Some(i as u32));
        }
        assert_eq!(ix.len(), n / 2);
        for i in (1..n).step_by(2) {
            assert_eq!(ix.get(16 * (i + 1)), Some(i as u32));
        }
        ix.clear();
        assert_eq!(ix.len(), 0);
        assert_eq!(ix.get(16), None);
        // Reusable after clear.
        ix.insert(32, 7);
        assert_eq!(ix.get(32), Some(7));
    }

    #[test]
    fn addr_index_survives_tombstone_churn() {
        // Regression: removals (elastic cuts) tombstone their slots;
        // without tombstones counting toward the rehash trigger, a long
        // churn with a tiny live set exhausts every EMPTY slot and the
        // next absent-key lookup probes forever.
        let mut ix = AddrIndex::new();
        let live_window = 16usize; // spills past SMALL_MAX
        for i in 0..10_000usize {
            let addr = 16 * (i + 1);
            ix.insert(addr, i as u32);
            if i >= live_window {
                let old = 16 * (i + 1 - live_window);
                assert_eq!(ix.remove(old), Some((i - live_window) as u32));
            }
            // Absent-key probe must terminate at every step.
            assert_eq!(ix.get(8), None);
        }
        assert_eq!(ix.len(), live_window);
        // Live entries remain reachable after all the rehashing.
        for i in (10_000 - live_window)..10_000usize {
            assert_eq!(ix.get(16 * (i + 1)), Some(i as u32));
        }
        // Table stays sized to the live set, not the churn volume.
        assert!(ix.table.len() <= 256, "table grew with churn: {}", ix.table.len());
    }

    #[test]
    fn inline_payload_roundtrips_and_drops_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Clone)]
        struct Tally(#[allow(dead_code)] u64);
        impl Drop for Tally {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let mut p = WritePayload::new(Tally(7));
            assert!(p.get_ref::<Tally>().is_some());
            let v = p.take::<Tally>().unwrap();
            assert!(p.is_empty());
            assert!(p.take::<Tally>().is_none());
            drop(v);
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1, "taken value dropped exactly once");

        DROPS.store(0, Ordering::SeqCst);
        {
            let _p = WritePayload::new(Tally(8));
            // dropped without take: destructor must run in place
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1);

        DROPS.store(0, Ordering::SeqCst);
        {
            let mut p = WritePayload::new(Tally(9));
            p.dispose();
            assert!(p.is_empty());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 1, "dispose destroys exactly once");
    }

    #[test]
    fn boxed_payload_roundtrips() {
        // A 5-word value cannot live inline.
        let big = [1u64, 2, 3, 4, 5];
        let mut p = WritePayload::new(big);
        assert_eq!(p.get_ref::<[u64; 5]>(), Some(&big));
        assert_eq!(p.take::<[u64; 5]>(), Some(big));
        assert!(p.is_empty());
    }

    #[test]
    fn small_string_and_arc_payloads_survive() {
        let mut p = WritePayload::new(String::from("hello polytm"));
        assert_eq!(p.get_ref::<String>().unwrap(), "hello polytm");
        assert_eq!(p.take::<String>().unwrap(), "hello polytm");

        let a = Arc::new(41u64);
        let mut p = WritePayload::new(Arc::clone(&a));
        assert_eq!(Arc::strong_count(&a), 2);
        let got = p.take::<Arc<u64>>().unwrap();
        assert_eq!(*got, 41);
        drop(got);
        assert_eq!(Arc::strong_count(&a), 1, "no leaked clone");
    }

    #[test]
    fn descriptor_pool_reuses_and_stays_pristine() {
        let mut d = take_descriptor();
        assert!(d.is_pristine());
        d.order.push(3);
        d.window_queue.push_back(1);
        d.clear();
        assert!(d.is_pristine());
        stash_descriptor(d);
        let d2 = take_descriptor();
        assert!(d2.is_pristine());
        stash_descriptor(d2);
    }
}
