//! # polytm — polymorphic software transactional memory
//!
//! This crate implements *transaction polymorphism* as introduced by
//! Gramoli and Guerraoui, "Brief Announcement: Transaction Polymorphism"
//! (SPAA 2011): a transactional memory in which every transaction is
//! started with a **semantic parameter** and transactions with *distinct*
//! semantics run concurrently over the same shared data.
//!
//! The paper's `start(p)` is [`Stm::run`]/[`Stm::try_run`] with a
//! [`TxParams`] carrying a [`Semantics`]:
//!
//! * [`Semantics::Opaque`] — the paper's default `def`: a monomorphic,
//!   opaque transaction (TL2-style: per-location versioned locks, a global
//!   version clock, commit-time write locking and read-set validation).
//! * [`Semantics::Elastic`] — the paper's `weak`: an *elastic* transaction
//!   (Felber, Gramoli, Guerraoui, DISC 2009). Before its first write, an
//!   elastic transaction may be **cut** into pieces: older reads fall out
//!   of a sliding window and are no longer validated, so search-style
//!   traversals tolerate concurrent updates behind them. This is exactly
//!   what accepts the paper's Figure 1 schedule.
//! * [`Semantics::Snapshot`] — a multi-versioned read-only transaction
//!   that reads from a bounded per-location version chain and never
//!   aborts on read-write conflicts.
//! * [`Semantics::Irrevocable`] — a pessimistic transaction that is
//!   guaranteed to commit (it serializes against all commits through a
//!   global revocation gate), useful for transactions with side effects
//!   and as the liveness fallback after repeated aborts.
//!
//! Shared data lives in [`TVar`]s. Values are published as immutable,
//! epoch-reclaimed version nodes, so readers never observe torn values and
//! the implementation contains no data races (see `DESIGN.md` at the
//! repository root for the memory-safety argument).
//!
//! ## Quick start
//!
//! ```
//! use polytm::{Stm, Semantics, TxParams};
//!
//! let stm = Stm::new();
//! let x = stm.new_tvar(0i64);
//! let y = stm.new_tvar(10i64);
//!
//! // A monomorphic (default-semantics) transaction, as in the paper's
//! // `start(def)`:
//! let sum = stm.run(TxParams::new(Semantics::Opaque), |tx| {
//!     let a = x.read(tx)?;
//!     let b = y.read(tx)?;
//!     x.write(tx, a + 1)?;
//!     Ok(a + b)
//! });
//! assert_eq!(sum, 10);
//!
//! // The paper's `start(weak)`: an elastic search that tolerates
//! // concurrent updates behind its sliding read window.
//! let found = stm.run(TxParams::new(Semantics::elastic()), |tx| {
//!     Ok(x.read(tx)? + y.read(tx)?)
//! });
//! assert_eq!(found, 11);
//! ```
//!
//! ## Nesting
//!
//! The paper (§3) asks what the semantics of a *nested* transaction should
//! be: the requested parameter, the parent's semantics, or the strongest
//! of the two. All three composition policies are implemented; see
//! [`NestingPolicy`] and [`Transaction::nested`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod advisor;
pub mod clock;
pub mod cm;
pub mod error;
pub(crate) mod gate;
pub mod redo;
pub mod semantics;
pub mod shard;
pub(crate) mod snapreg;
pub mod stats;
pub mod stm;
pub mod tarray;
pub mod trace;
pub mod tvar;
pub(crate) mod txdesc;
pub mod txn;
pub(crate) mod varcore;

pub use advisor::{AttemptPlan, ClassId, RunTelemetry, SemanticsSource};
pub use clock::GlobalClock;
pub use cm::{
    Backoff, ConflictArbiter, ConflictDecision, ContentionManager, Greedy, Suicide, TxMeta,
};
pub use error::{Abort, AbortCause, Canceled, TxResult};
pub use redo::{CommitInfo, RedoSink};
pub use semantics::{NestingPolicy, Semantics, Strength};
pub use shard::current_thread_index;
pub use stats::{StatsSnapshot, StmStats};
pub use stm::{Stm, StmConfig, TxParams};
pub use tarray::TArray;
pub use trace::{TraceEvent, TraceSink};
pub use tvar::{TVar, TxValue};
pub use txdesc::INLINE_WRITE_WORDS;
pub use txn::Transaction;

/// True when buffered transactional writes of `T` use the descriptor's
/// allocation-free inline payload storage. Payloads larger than
/// [`INLINE_WRITE_WORDS`] machine words (or over-aligned ones) are
/// boxed per write — an allocation plus an erased destructor on the
/// commit hot path, counted in [`StatsSnapshot::boxed_writes`]. Value
/// types meant for hot write paths should be designed to satisfy this
/// predicate, typically by `Arc`-boxing their large part (one pointer
/// inline; the bytes shared).
pub const fn write_payload_fits_inline<T: TxValue>() -> bool {
    txdesc::fits_inline::<T>()
}

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::{
        Abort, NestingPolicy, Semantics, Stm, StmConfig, TVar, Transaction, TxParams, TxResult,
    };
}
