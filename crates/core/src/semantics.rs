//! Transaction semantics — the paper's polymorphism parameter `p`.
//!
//! The paper defines the *semantics of an operation* as the assignment of
//! its accesses to indivisible **critical steps**. A transactional memory
//! supports polymorphism when `start(p)` accepts a semantic parameter and
//! transactions with distinct `p` run concurrently. This module defines
//! the semantics polytm ships and the composition rules for nested
//! transactions (the paper's §3 open question).

/// The semantic parameter passed at `start(p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// The paper's default `def`: one critical step spanning **all**
    /// accesses of the transaction. Implemented as an opaque TL2-style
    /// transaction: all reads must mutually coexist at a single point of
    /// the execution (the read version, possibly extended), and the write
    /// set is published atomically.
    Opaque,
    /// The paper's `weak`: an *elastic* transaction whose accesses form a
    /// sliding chain of overlapping critical steps `γ_i` of size
    /// `window` — `r(x),r(y) ↦ γ1`, `r(y),r(z) ↦ γ2`, … (the sorted
    /// linked-list `contains` example of the paper's Figure 1).
    ///
    /// Before its first write the transaction may be *cut*: reads that
    /// slide out of the window stop being validated. From the first write
    /// on, the remaining window plus all later accesses behave opaquely.
    Elastic {
        /// Size of the sliding critical-step window (≥ 1; the paper's
        /// linked-list semantics corresponds to 2).
        window: usize,
    },
    /// A multi-versioned **read-only** transaction: reads return the
    /// newest committed version not newer than the transaction's start
    /// time, taken from the location's bounded version history. Never
    /// aborts because a committed write conflicts with its reads; it may
    /// retry (transparently, with a fresh bound) when a location's lock
    /// is held by an in-flight commit and the contention manager rules
    /// against waiting, or when the bounded history has been truncated
    /// past its bound. Writing under this semantics fails with
    /// [`crate::Abort::ReadOnlyViolation`].
    Snapshot,
    /// A pessimistic transaction that is guaranteed to commit exactly
    /// once: it acquires the STM's *revocation gate* exclusively, so no
    /// other transaction commits during its lifetime, and its writes are
    /// applied eagerly. Use for transactions with irreversible side
    /// effects, and as the automatic liveness fallback after repeated
    /// aborts (see [`crate::StmConfig::irrevocable_fallback_after`]).
    Irrevocable,
}

impl Semantics {
    /// The paper's `weak` keyword: elastic semantics with the canonical
    /// window of two accesses (a linked-list-style hand-over-hand chain
    /// of critical steps).
    pub const fn elastic() -> Self {
        Semantics::Elastic { window: 2 }
    }

    /// The paper's `def` keyword (alias of [`Semantics::Opaque`]).
    pub const fn default_semantics() -> Self {
        Semantics::Opaque
    }

    /// Total strength order used by [`NestingPolicy::Strongest`].
    pub fn strength(self) -> Strength {
        match self {
            Semantics::Snapshot => Strength(0),
            Semantics::Elastic { .. } => Strength(1),
            Semantics::Opaque => Strength(2),
            Semantics::Irrevocable => Strength(3),
        }
    }

    /// True when the semantics forbids writes.
    pub fn is_read_only(self) -> bool {
        matches!(self, Semantics::Snapshot)
    }

    /// Short label for statistics and table output.
    pub fn label(self) -> &'static str {
        match self {
            Semantics::Opaque => "opaque",
            Semantics::Elastic { .. } => "elastic",
            Semantics::Snapshot => "snapshot",
            Semantics::Irrevocable => "irrevocable",
        }
    }
}

impl Default for Semantics {
    /// The paper: "omit it and the default semantics `def` will be used".
    fn default() -> Self {
        Semantics::Opaque
    }
}

/// Opaque strength rank; larger is stronger (more restrictive).
///
/// `Snapshot < Elastic < Opaque < Irrevocable`. Snapshot ranks weakest
/// because it constrains concurrent transactions the least (it never
/// acquires locks nor validates), even though it offers its *own* reads a
/// full consistent snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Strength(pub u8);

/// How a nested transaction's requested semantics composes with its
/// parent's — the three candidate answers enumerated in the paper's §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NestingPolicy {
    /// "the semantics indicated by its parameter as if it was not nested"
    Parameter,
    /// "the parent transaction semantics"
    Parent,
    /// "the strongest of the two" (the default: it is the only policy of
    /// the three that never weakens an enclosing guarantee).
    #[default]
    Strongest,
}

/// Effective semantics of a nested block under `policy`.
///
/// Composition never yields an unsound combination: requesting
/// [`Semantics::Irrevocable`] inside an optimistic parent cannot be
/// honoured in place (the parent's reads are revocable), so the runtime
/// signals [`crate::Abort::RestartIrrevocable`] instead — see
/// [`crate::Transaction::nested`].
pub fn compose(parent: Semantics, requested: Semantics, policy: NestingPolicy) -> Semantics {
    match policy {
        NestingPolicy::Parameter => requested,
        NestingPolicy::Parent => parent,
        NestingPolicy::Strongest => {
            if requested.strength() >= parent.strength() {
                requested
            } else {
                parent
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_and_def_keywords() {
        assert_eq!(Semantics::elastic(), Semantics::Elastic { window: 2 });
        assert_eq!(Semantics::default_semantics(), Semantics::Opaque);
        assert_eq!(Semantics::default(), Semantics::Opaque);
    }

    #[test]
    fn strength_is_totally_ordered() {
        assert!(Semantics::Snapshot.strength() < Semantics::elastic().strength());
        assert!(Semantics::elastic().strength() < Semantics::Opaque.strength());
        assert!(Semantics::Opaque.strength() < Semantics::Irrevocable.strength());
    }

    #[test]
    fn only_snapshot_is_read_only() {
        assert!(Semantics::Snapshot.is_read_only());
        assert!(!Semantics::Opaque.is_read_only());
        assert!(!Semantics::elastic().is_read_only());
        assert!(!Semantics::Irrevocable.is_read_only());
    }

    #[test]
    fn compose_parameter_policy_takes_request() {
        let got = compose(Semantics::Opaque, Semantics::elastic(), NestingPolicy::Parameter);
        assert_eq!(got, Semantics::elastic());
    }

    #[test]
    fn compose_parent_policy_takes_parent() {
        let got = compose(Semantics::Opaque, Semantics::elastic(), NestingPolicy::Parent);
        assert_eq!(got, Semantics::Opaque);
    }

    #[test]
    fn compose_strongest_policy_never_weakens() {
        // weak nested in def -> def
        assert_eq!(
            compose(Semantics::Opaque, Semantics::elastic(), NestingPolicy::Strongest),
            Semantics::Opaque
        );
        // def nested in weak -> def
        assert_eq!(
            compose(Semantics::elastic(), Semantics::Opaque, NestingPolicy::Strongest),
            Semantics::Opaque
        );
        // equal strengths keep the request (window may differ)
        assert_eq!(
            compose(
                Semantics::Elastic { window: 2 },
                Semantics::Elastic { window: 4 },
                NestingPolicy::Strongest
            ),
            Semantics::Elastic { window: 4 }
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Semantics::Opaque.label(), "opaque");
        assert_eq!(Semantics::elastic().label(), "elastic");
        assert_eq!(Semantics::Snapshot.label(), "snapshot");
        assert_eq!(Semantics::Irrevocable.label(), "irrevocable");
    }
}
