//! Contention management — the per-transaction liveness knob.
//!
//! The paper motivates polymorphism partly by "providing one liveness
//! guarantee per transaction". Contention managers decide, at each
//! conflict, whether the running transaction waits for the lock owner or
//! aborts itself, and how long an aborted transaction backs off before
//! retrying.

use std::time::Duration;

/// Identity and progress information about the transaction consulting the
/// contention manager.
#[derive(Debug, Clone, Copy)]
pub struct TxMeta {
    /// Birth timestamp: assigned once per [`crate::Stm::run`] call and
    /// kept across retries, so long-suffering transactions age and win
    /// priority under [`Greedy`].
    pub birth_ts: u64,
    /// Number of times this transaction has already aborted and retried.
    pub retries: u32,
}

/// What to do about a conflict with a lock owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictDecision {
    /// Spin briefly and re-examine the location.
    Wait,
    /// Abort the current attempt (the runtime will back off and retry).
    AbortSelf,
}

/// Strategy consulted on every conflict and after every abort.
pub trait ContentionManager: Send + Sync {
    /// Called when `me` finds a location locked by the transaction with
    /// birth timestamp `owner_ts` (0 if unknown). `spins` counts how many
    /// times this particular conflict has already returned
    /// [`ConflictDecision::Wait`].
    fn on_conflict(&self, me: &TxMeta, owner_ts: u64, spins: u32) -> ConflictDecision;

    /// How long to back off before retry number `retries`. `None` means
    /// retry immediately.
    fn backoff(&self, retries: u32) -> Option<Duration>;
}

/// Abort immediately on any conflict and retry without backoff. The
/// classic baseline: lowest latency under low contention, livelock-prone
/// under high contention.
#[derive(Debug, Default, Clone, Copy)]
pub struct Suicide;

impl ContentionManager for Suicide {
    fn on_conflict(&self, _me: &TxMeta, _owner_ts: u64, _spins: u32) -> ConflictDecision {
        ConflictDecision::AbortSelf
    }

    fn backoff(&self, _retries: u32) -> Option<Duration> {
        None
    }
}

/// Abort on conflict, then back off exponentially (with a cap) before
/// retrying. Randomization is deliberately left out to keep benchmark runs
/// reproducible; the cap prevents unbounded sleeps.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound for the exponential growth.
    pub cap: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Self { base: Duration::from_micros(2), cap: Duration::from_millis(1) }
    }
}

impl ContentionManager for Backoff {
    fn on_conflict(&self, _me: &TxMeta, _owner_ts: u64, spins: u32) -> ConflictDecision {
        // Give the owner a brief chance to finish its commit before
        // aborting: commits hold locks for a very short time.
        if spins < 8 {
            ConflictDecision::Wait
        } else {
            ConflictDecision::AbortSelf
        }
    }

    fn backoff(&self, retries: u32) -> Option<Duration> {
        let shift = retries.min(20);
        let d = self.base.saturating_mul(1u32 << shift.min(16));
        Some(d.min(self.cap))
    }
}

/// Timestamp-priority (Greedy-style) management: the *older* transaction
/// wins. A transaction that conflicts with a younger lock owner waits for
/// it; a younger transaction aborts itself. A spin cap (`patience`) bounds
/// the wait so that a stalled owner cannot block the system forever —
/// trading the textbook priority guarantee for robustness, as production
/// TMs do.
#[derive(Debug, Clone, Copy)]
pub struct Greedy {
    /// Maximum number of waits before even an older transaction gives up
    /// and aborts.
    pub patience: u32,
}

impl Default for Greedy {
    fn default() -> Self {
        Self { patience: 1 << 14 }
    }
}

impl ContentionManager for Greedy {
    fn on_conflict(&self, me: &TxMeta, owner_ts: u64, spins: u32) -> ConflictDecision {
        if spins >= self.patience {
            return ConflictDecision::AbortSelf;
        }
        // owner_ts == 0 means the owner is unknown (lock observed between
        // acquisition and owner registration); treat as younger and wait a
        // moment.
        if owner_ts == 0 || me.birth_ts < owner_ts {
            ConflictDecision::Wait
        } else {
            ConflictDecision::AbortSelf
        }
    }

    fn backoff(&self, retries: u32) -> Option<Duration> {
        // Young (recently aborted) transactions yield a little so that the
        // older transaction they lost against can finish.
        if retries == 0 {
            None
        } else {
            Some(Duration::from_micros(u64::from(retries.min(64))))
        }
    }
}

/// The contention managers shipped with polytm, selectable via
/// [`crate::StmConfig`] without trait objects in user code.
#[derive(Debug, Clone, Copy)]
pub enum ConflictArbiter {
    /// [`Suicide`].
    Suicide(Suicide),
    /// [`Backoff`].
    Backoff(Backoff),
    /// [`Greedy`].
    Greedy(Greedy),
}

impl Default for ConflictArbiter {
    fn default() -> Self {
        ConflictArbiter::Backoff(Backoff::default())
    }
}

impl ConflictArbiter {
    /// Human-readable name for tables.
    pub fn label(&self) -> &'static str {
        match self {
            ConflictArbiter::Suicide(_) => "suicide",
            ConflictArbiter::Backoff(_) => "backoff",
            ConflictArbiter::Greedy(_) => "greedy",
        }
    }
}

impl ContentionManager for ConflictArbiter {
    fn on_conflict(&self, me: &TxMeta, owner_ts: u64, spins: u32) -> ConflictDecision {
        match self {
            ConflictArbiter::Suicide(m) => m.on_conflict(me, owner_ts, spins),
            ConflictArbiter::Backoff(m) => m.on_conflict(me, owner_ts, spins),
            ConflictArbiter::Greedy(m) => m.on_conflict(me, owner_ts, spins),
        }
    }

    fn backoff(&self, retries: u32) -> Option<Duration> {
        match self {
            ConflictArbiter::Suicide(m) => m.backoff(retries),
            ConflictArbiter::Backoff(m) => m.backoff(retries),
            ConflictArbiter::Greedy(m) => m.backoff(retries),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(ts: u64, retries: u32) -> TxMeta {
        TxMeta { birth_ts: ts, retries }
    }

    #[test]
    fn suicide_always_aborts_never_sleeps() {
        let cm = Suicide;
        assert_eq!(cm.on_conflict(&meta(1, 0), 2, 0), ConflictDecision::AbortSelf);
        assert_eq!(cm.backoff(5), None);
    }

    #[test]
    fn backoff_waits_briefly_then_aborts() {
        let cm = Backoff::default();
        assert_eq!(cm.on_conflict(&meta(1, 0), 2, 0), ConflictDecision::Wait);
        assert_eq!(cm.on_conflict(&meta(1, 0), 2, 100), ConflictDecision::AbortSelf);
    }

    #[test]
    fn backoff_grows_and_is_capped() {
        let cm = Backoff { base: Duration::from_micros(1), cap: Duration::from_micros(100) };
        let d1 = cm.backoff(0).unwrap();
        let d2 = cm.backoff(3).unwrap();
        let dmax = cm.backoff(30).unwrap();
        assert!(d1 < d2, "backoff must grow");
        assert_eq!(dmax, Duration::from_micros(100), "backoff must be capped");
    }

    #[test]
    fn greedy_older_waits_younger_aborts() {
        let cm = Greedy::default();
        // I'm older (smaller ts) than the owner: wait.
        assert_eq!(cm.on_conflict(&meta(1, 0), 9, 0), ConflictDecision::Wait);
        // I'm younger: abort.
        assert_eq!(cm.on_conflict(&meta(9, 0), 1, 0), ConflictDecision::AbortSelf);
    }

    #[test]
    fn greedy_patience_is_bounded() {
        let cm = Greedy { patience: 4 };
        assert_eq!(cm.on_conflict(&meta(1, 0), 9, 4), ConflictDecision::AbortSelf);
    }

    #[test]
    fn arbiter_dispatches() {
        let a = ConflictArbiter::Suicide(Suicide);
        assert_eq!(a.label(), "suicide");
        assert_eq!(a.on_conflict(&meta(1, 0), 2, 0), ConflictDecision::AbortSelf);
        let g = ConflictArbiter::Greedy(Greedy::default());
        assert_eq!(g.label(), "greedy");
        assert_eq!(g.on_conflict(&meta(1, 0), 2, 0), ConflictDecision::Wait);
    }
}
