//! MVCC snapshot-path tests: the wait-free read protocol and the
//! watermark-driven version retention introduced with the snapshot
//! registry.
//!
//! Three properties are on trial:
//!
//! 1. **Commit-atomic cuts** — a snapshot reader must never observe a
//!    torn multi-location commit, whatever the interleaving with
//!    committers (the torn-cut detector stress).
//! 2. **Retention** — a version reachable from a live snapshot bound
//!    is never reclaimed, however far the writers run ahead and however
//!    small `history_depth` is (it is a retention *floor*, not a cap).
//! 3. **Irrevocable exclusion** — the era gate drains committers before
//!    an irrevocable transaction starts, so its unarbitrated direct
//!    reads can never observe a locked slot (a debug assertion in the
//!    read path turns any violation into a test failure).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Barrier;

use proptest::prelude::*;

use polytm::{Semantics, Stm, StmConfig, TVar, TxParams};

/// Worker-thread count, env-gated for CI: `POLYTM_STRESS_THREADS`
/// (default 4, minimum 2 so every test still exercises real
/// concurrency).
fn threads() -> usize {
    std::env::var("POLYTM_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(2)
}

/// Scales an iteration count by `POLYTM_STRESS_SCALE` (a percentage;
/// default 100 = the written counts, minimum result 1).
fn scaled(n: u64) -> u64 {
    let pct = std::env::var("POLYTM_STRESS_SCALE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100)
        .max(1);
    (n * pct / 100).max(1)
}

/// The torn-cut detector: transfer transactions move value among
/// *four* accounts at a time (two debits, two credits) while snapshot
/// auditors sum the whole array in parallel. Any cut that interleaves
/// a committer's publishes — e.g. a reader that took the wait-free
/// fast path past a committer's lock but then read one slot too new —
/// shows up as a non-conserved total.
#[test]
fn snapshot_cuts_are_commit_atomic_under_transfer_churn() {
    let stm = Stm::new();
    const ACCOUNTS: usize = 24;
    const INITIAL: i64 = 1_000;
    let accounts: Vec<TVar<i64>> = (0..ACCOUNTS).map(|_| stm.new_tvar(INITIAL)).collect();
    let stop = AtomicBool::new(false);
    let expect = ACCOUNTS as i64 * INITIAL;

    std::thread::scope(|s| {
        let transfers = scaled(500);
        for tid in 0..threads() {
            let (accounts, stm, stop) = (&accounts, &stm, &stop);
            s.spawn(move || {
                let mut seed = 0x9e37_79b9_7f4a_7c15u64 ^ (tid as u64);
                let mut next = || {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (seed >> 33) as usize % ACCOUNTS
                };
                for _ in 0..transfers {
                    let (a, b, c, d) = (next(), next(), next(), next());
                    stm.run(TxParams::default(), |t| {
                        // Two debits, two credits — all-or-nothing.
                        for idx in [a, b] {
                            let v = accounts[idx].read(t)?;
                            accounts[idx].write(t, v - 3)?;
                        }
                        for idx in [c, d] {
                            let v = accounts[idx].read(t)?;
                            accounts[idx].write(t, v + 3)?;
                        }
                        Ok(())
                    });
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        // Two snapshot auditors so auditors also race each other's
        // registry slots, not just the committers.
        for _ in 0..2 {
            let (accounts, stm, stop) = (&accounts, &stm, &stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let total = stm.run(TxParams::new(Semantics::Snapshot), |t| {
                        let mut sum = 0i64;
                        for acc in accounts {
                            sum += acc.read(t)?;
                        }
                        Ok(sum)
                    });
                    assert_eq!(total, expect, "snapshot observed a torn transfer cut");
                }
            });
        }
    });

    let final_total: i64 = accounts.iter().map(|a| a.load_committed()).sum();
    assert_eq!(final_total, expect);
}

/// Long scans under write churn with a *tiny* history depth: watermark
/// retention must keep every version a live snapshot bound can reach,
/// so registered snapshot transactions never die with
/// `SnapshotUnavailable` — the failure mode the fixed-depth scheme had.
#[test]
fn long_scans_survive_churn_with_minimal_history_depth() {
    let stm = Stm::with_config(StmConfig { history_depth: 1, ..StmConfig::default() });
    const VARS: usize = 96;
    let vars: Vec<TVar<u64>> = (0..VARS).map(|_| stm.new_tvar(0u64)).collect();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Writers: bump a whole stripe per transaction, as fast as
        // possible, overwriting each slot's history far past depth 1.
        for tid in 0..threads().saturating_sub(1).max(1) {
            let (vars, stm, stop) = (&vars, &stm, &stop);
            s.spawn(move || {
                let mut i = tid;
                while !stop.load(Ordering::Relaxed) {
                    stm.run(TxParams::default(), |t| {
                        for off in 0..4 {
                            vars[(i + off * 7) % VARS].modify(t, |v| v + 1)?;
                        }
                        Ok(())
                    });
                    i = i.wrapping_add(1);
                }
            });
        }
        // Scanner: whole-array snapshot scans. With the registry in
        // place these must complete; the per-scan assertion is that the
        // sum is a value some committed prefix could have produced
        // (monotone non-decreasing across scans, since slots only grow).
        let (vars, stm, stop) = (&vars, &stm, &stop);
        s.spawn(move || {
            let mut last = 0u64;
            for _ in 0..scaled(200) {
                let sum = stm.run(TxParams::new(Semantics::Snapshot), |t| {
                    let mut sum = 0u64;
                    for v in vars {
                        sum += v.read(t)?;
                    }
                    Ok(sum)
                });
                assert!(sum >= last, "snapshot sums must not go backwards");
                last = sum;
            }
            stop.store(true, Ordering::Relaxed);
        });
    });

    let stats = stm.stats();
    assert_eq!(
        stats.aborts_unavailable, 0,
        "a registered snapshot bound must pin its versions: {stats:?}"
    );
}

/// Era-gate regression for the irrevocable direct-read path: the grant
/// drains and excludes committers, so an irrevocable reader must never
/// observe a locked slot. The read path carries a debug assertion on
/// that invariant — running this test in a debug profile turns any
/// regression (e.g. a committer locking outside its gate registration)
/// into a panic here.
#[test]
fn irrevocable_direct_reads_never_observe_committer_locks() {
    let stm = Stm::new();
    const VARS: usize = 16;
    let vars: Vec<TVar<i64>> = (0..VARS).map(|_| stm.new_tvar(0i64)).collect();
    let rounds = scaled(150);

    std::thread::scope(|s| {
        // Optimistic committers with multi-location write sets: wide
        // lock spans maximize the window an unguarded reader would hit.
        for tid in 0..threads().saturating_sub(1).max(1) {
            let (vars, stm) = (&vars, &stm);
            s.spawn(move || {
                for i in 0..rounds as usize {
                    stm.run(TxParams::default(), |t| {
                        for off in 0..8 {
                            let idx = (tid + i + off) % VARS;
                            vars[idx].modify(t, |v| v + 1)?;
                        }
                        Ok(())
                    });
                }
            });
        }
        // Irrevocable readers: read-only passes over the same slots.
        let (vars, stm) = (&vars, &stm);
        s.spawn(move || {
            for _ in 0..rounds {
                let _ = stm.run(TxParams::new(Semantics::Irrevocable), |t| {
                    let mut sum = 0i64;
                    for v in vars {
                        sum += v.read(t)?;
                    }
                    Ok(std::hint::black_box(sum))
                });
            }
        });
    });
}

/// Pin-refresh hygiene: a snapshot scan long enough to cross the epoch
/// pin refresh interval several times, against writers that overwrite
/// every slot in one transaction per round. The refresh must never open
/// an unpinned window between the chain-head load and the node deref —
/// a violation surfaces as a torn cut (mixed rounds) or as a crash
/// under epoch reclamation.
#[test]
fn snapshot_pin_refresh_preserves_a_consistent_cut() {
    let stm = Stm::new();
    // More vars than the pin-refresh interval (64), so one scan
    // refreshes its guard several times mid-transaction.
    const VARS: usize = 200;
    let vars: Vec<TVar<u64>> = (0..VARS).map(|_| stm.new_tvar(0u64)).collect();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        let (vars, stm, stop) = (&vars, &stm, &stop);
        s.spawn(move || {
            let mut round = 1u64;
            while !stop.load(Ordering::Relaxed) {
                // One commit writes the same round everywhere.
                stm.run(TxParams::default(), |t| {
                    for v in vars {
                        v.write(t, round)?;
                    }
                    Ok(())
                });
                round += 1;
            }
        });
        for _ in 0..scaled(150) {
            let (lo, hi) = stm.run(TxParams::new(Semantics::Snapshot), |t| {
                let mut lo = u64::MAX;
                let mut hi = 0u64;
                for v in vars {
                    let val = v.read(t)?;
                    lo = lo.min(val);
                    hi = hi.max(val);
                }
                Ok((lo, hi))
            });
            assert_eq!(lo, hi, "pin refresh tore a snapshot cut: rounds {lo}..{hi}");
        }
        stop.store(true, Ordering::Relaxed);
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
    ))]

    /// Retention property, end to end: a snapshot transaction begun
    /// *before* a burst of commits can still read every location at its
    /// bound afterwards — however many commits landed in between and
    /// however small the depth floor — because its registered bound
    /// holds the truncation watermark back.
    #[test]
    fn retention_never_reclaims_a_version_a_live_bound_can_reach(
        commits in 1u64..120,
        depth in 1usize..3,
        nvars in 2usize..6,
    ) {
        let stm = Stm::with_config(StmConfig { history_depth: depth, ..StmConfig::default() });
        let vars: Vec<TVar<u64>> = (0..nvars).map(|_| stm.new_tvar(0u64)).collect();
        let barrier = Barrier::new(2);
        let attempts = AtomicU32::new(0);

        let seen = std::thread::scope(|s| {
            let (vars, stm, barrier) = (&vars, &stm, &barrier);
            s.spawn(move || {
                barrier.wait(); // reader's bound is fixed
                for round in 1..=commits {
                    stm.run(TxParams::default(), |t| {
                        for v in vars {
                            v.write(t, round)?;
                        }
                        Ok(())
                    });
                }
                barrier.wait(); // churn done
            });
            stm.try_run(TxParams::new(Semantics::Snapshot), |t| {
                // Synchronize on the first attempt only: a retry would
                // mean the snapshot failed, which is itself a failure
                // of the property (asserted below via try_run's Ok).
                if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                    barrier.wait();
                    barrier.wait();
                }
                let mut seen = Vec::with_capacity(vars.len());
                for v in vars {
                    seen.push(v.read(t)?);
                }
                Ok(seen)
            })
        });

        let seen = match seen {
            Ok(seen) => seen,
            Err(abort) => return Err(TestCaseError::fail(format!(
                "snapshot at a live bound aborted after {commits} commits (depth {depth}): {abort}"
            ))),
        };
        prop_assert_eq!(attempts.load(Ordering::Relaxed), 1, "the bound-holding attempt retried");
        // The bound predates every commit: the cut must be the initial
        // state, read *after* `commits` overwrites of a depth-`depth`
        // history.
        prop_assert!(seen.iter().all(|&v| v == 0), "non-initial values at the old bound: {seen:?}");
        prop_assert_eq!(stm.stats().aborts_unavailable, 0u64);
    }
}
