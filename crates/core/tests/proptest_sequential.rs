//! Property-based tests: executed sequentially (one transaction at a
//! time), every semantics must agree with a simple reference model —
//! polymorphism changes *concurrency*, never sequential meaning.

use proptest::prelude::*;

use polytm::{Semantics, Stm, TxParams};

#[derive(Debug, Clone)]
enum Op {
    /// Write var[i] = value.
    Write(usize, i64),
    /// Read var[i] (checked against the model).
    Read(usize),
    /// Add delta to var[i].
    Add(usize, i64),
}

fn op_strategy(nvars: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nvars, any::<i64>()).prop_map(|(i, v)| Op::Write(i, v)),
        (0..nvars).prop_map(Op::Read),
        (0..nvars, -100i64..100).prop_map(|(i, d)| Op::Add(i, d)),
    ]
}

fn tx_strategy(nvars: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(op_strategy(nvars), 1..12)
}

fn writing_semantics() -> impl Strategy<Value = Semantics> {
    prop_oneof![
        Just(Semantics::Opaque),
        (1usize..4).prop_map(|w| Semantics::Elastic { window: w }),
        Just(Semantics::Irrevocable),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of transactions, each under any (writing) semantics,
    /// behaves exactly like applying the operations to an array.
    #[test]
    fn sequential_equivalence_to_model(
        txs in prop::collection::vec((writing_semantics(), tx_strategy(6)), 1..20)
    ) {
        const NVARS: usize = 6;
        let stm = Stm::new();
        let vars: Vec<_> = (0..NVARS).map(|_| stm.new_tvar(0i64)).collect();
        let mut model = [0i64; NVARS];

        for (sem, ops) in txs {
            let mut shadow = model;
            stm.run(TxParams::new(sem), |t| {
                // Transactions may re-execute; recompute from the model.
                shadow = model;
                for op in &ops {
                    match *op {
                        Op::Write(i, v) => {
                            vars[i].write(t, v)?;
                            shadow[i] = v;
                        }
                        Op::Read(i) => {
                            assert_eq!(vars[i].read(t)?, shadow[i]);
                        }
                        Op::Add(i, d) => {
                            let v = vars[i].read(t)?;
                            assert_eq!(v, shadow[i]);
                            vars[i].write(t, v.wrapping_add(d))?;
                            shadow[i] = shadow[i].wrapping_add(d);
                        }
                    }
                }
                Ok(())
            });
            model = shadow;
        }
        for (i, var) in vars.iter().enumerate() {
            prop_assert_eq!(var.load_committed(), model[i]);
        }
    }

    /// Snapshot transactions sequentially read exactly the committed state.
    #[test]
    fn snapshot_reads_committed_state(
        writes in prop::collection::vec((0usize..5, any::<i64>()), 1..30)
    ) {
        const NVARS: usize = 5;
        let stm = Stm::new();
        let vars: Vec<_> = (0..NVARS).map(|_| stm.new_tvar(0i64)).collect();
        let mut model = [0i64; NVARS];
        for (i, v) in writes {
            stm.run(TxParams::default(), |t| vars[i].write(t, v));
            model[i] = v;
            let seen = stm.run(TxParams::new(Semantics::Snapshot), |t| {
                let mut out = [0i64; NVARS];
                for (j, var) in vars.iter().enumerate() {
                    out[j] = var.read(t)?;
                }
                Ok(out)
            });
            prop_assert_eq!(seen, model);
        }
    }

    /// Elastic cut accounting: a pure read chain of length n through a
    /// window w cuts exactly max(n - w, 0) reads (distinct locations).
    #[test]
    fn elastic_cut_count_formula(n in 1usize..40, w in 1usize..6) {
        let stm = Stm::new();
        let vars: Vec<_> = (0..n).map(|_| stm.new_tvar(0i64)).collect();
        stm.run(TxParams::new(Semantics::Elastic { window: w }), |t| {
            for v in &vars {
                v.read(t)?;
            }
            Ok(())
        });
        prop_assert_eq!(stm.stats().elastic_cuts as usize, n.saturating_sub(w));
    }

    /// Cancellation never publishes anything, regardless of semantics or
    /// preceding buffered writes.
    #[test]
    fn cancel_never_publishes(
        sem in prop_oneof![Just(Semantics::Opaque), Just(Semantics::elastic())],
        ops in prop::collection::vec((0usize..4, any::<i64>()), 0..10)
    ) {
        const NVARS: usize = 4;
        let stm = Stm::new();
        let vars: Vec<_> = (0..NVARS).map(|_| stm.new_tvar(7i64)).collect();
        let r: Result<(), _> = stm.try_run(TxParams::new(sem), |t| {
            for &(i, v) in &ops {
                vars[i].write(t, v)?;
            }
            t.cancel()
        });
        prop_assert!(r.is_err());
        for var in &vars {
            prop_assert_eq!(var.load_committed(), 7);
        }
    }
}
