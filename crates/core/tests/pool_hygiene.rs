//! Pool-hygiene regression tests: transaction descriptors are reused
//! across attempts and across transactions (crates/core/src/txdesc.rs),
//! and reuse must never leak read-set or write-set state from one
//! attempt into another — no stale reads validated, no dead writes
//! resurrected, no buffered values leaked or double-dropped.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use polytm::{Semantics, Stm, TxParams};

/// Retried attempts must start with empty read and write sets even
/// though they reuse the same pooled descriptor.
#[test]
fn descriptor_state_does_not_leak_across_retries() {
    let stm = Stm::new();
    let a = stm.new_tvar(0i64);
    let b = stm.new_tvar(0i64);
    let attempts = AtomicU32::new(0);
    stm.run(TxParams::default(), |tx| {
        assert_eq!(tx.pending_writes(), 0, "fresh attempt must have no buffered writes");
        assert_eq!(tx.live_reads(), 0, "fresh attempt must have no read-set entries");
        let n = attempts.fetch_add(1, Ordering::Relaxed);
        if n == 0 {
            // First attempt: populate both sets, then force a retry.
            let _ = a.read(tx)?;
            a.write(tx, 111)?;
            return tx.retry();
        }
        // Second attempt writes only b.
        b.write(tx, 222)
    });
    assert_eq!(attempts.load(Ordering::Relaxed), 2);
    assert_eq!(a.load_committed(), 0, "first attempt's buffered write must die with the retry");
    assert_eq!(b.load_committed(), 222);
}

/// State must not leak across *transactions* on the same thread either.
#[test]
fn descriptor_state_does_not_leak_across_transactions() {
    let stm = Stm::new();
    let a = stm.new_tvar(1i64);
    let b = stm.new_tvar(2i64);
    // Transaction 1: reads and writes, cancelled (nothing published).
    let r = stm.try_run(TxParams::default(), |tx| {
        let _ = a.read(tx)?;
        a.write(tx, 999)?;
        tx.cancel::<()>()
    });
    assert!(r.is_err());
    assert_eq!(a.load_committed(), 1);
    // Transaction 2 (same thread, pooled descriptor): must start clean
    // and commit only its own write.
    stm.run(TxParams::default(), |tx| {
        assert_eq!(tx.pending_writes(), 0);
        assert_eq!(tx.live_reads(), 0);
        b.write(tx, 20)
    });
    assert_eq!(a.load_committed(), 1, "cancelled write resurrected by descriptor reuse");
    assert_eq!(b.load_committed(), 20);
}

/// Buffered write values must be dropped exactly once on every path:
/// commit (moved out and published), retry, cancel, and overwrite.
#[test]
fn buffered_values_drop_exactly_once() {
    static LIVE: AtomicUsize = AtomicUsize::new(0);

    #[derive(Debug)]
    struct Tally(#[allow(dead_code)] u64);
    impl Tally {
        fn new(v: u64) -> Arc<Tally> {
            LIVE.fetch_add(1, Ordering::SeqCst);
            Arc::new(Tally(v))
        }
    }
    impl Drop for Tally {
        fn drop(&mut self) {
            LIVE.fetch_sub(1, Ordering::SeqCst);
        }
    }

    let stm = Stm::new();
    let x = stm.new_tvar(Tally::new(0));

    // Overwrite in one transaction: the first buffered value must be
    // destroyed by the second write, the second published.
    stm.run(TxParams::default(), |tx| {
        x.write(tx, Tally::new(1))?;
        x.write(tx, Tally::new(2))
    });

    // Cancelled transaction: buffered value destroyed, never published.
    let _ = stm.try_run(TxParams::default(), |tx| {
        x.write(tx, Tally::new(3))?;
        tx.cancel::<()>()
    });

    // Retried transaction: attempt 1's value destroyed with the abort.
    let attempts = AtomicU32::new(0);
    stm.run(TxParams::default(), |tx| {
        let n = attempts.fetch_add(1, Ordering::Relaxed);
        x.write(tx, Tally::new(10 + u64::from(n)))?;
        if n == 0 {
            return tx.retry();
        }
        Ok(())
    });

    // Quiesce: drop every handle we still hold and overwrite the TVar's
    // committed head with a non-Tally-free chain... simplest: read the
    // committed value, then drop the TVar and the Stm. History chains
    // hold older versions until reclaimed, so flush epochs by running a
    // few more transactions, then drop everything.
    drop(x);
    drop(stm);
    // Deferred epoch destruction may lag; force quiescent collections.
    for _ in 0..100 {
        if LIVE.load(Ordering::SeqCst) == 0 {
            break;
        }
        // A pin/unpin cycle gives the epoch collector a quiescent point.
        let probe = polytm::Stm::new();
        let v = probe.new_tvar(0u8);
        probe.run(TxParams::default(), |tx| v.modify(tx, |n| n + 1));
        std::thread::yield_now();
    }
    assert_eq!(LIVE.load(Ordering::SeqCst), 0, "buffered value leaked or double-dropped");
}

/// Elastic window bookkeeping must reset between attempts: cut counts
/// are per-attempt and a reused descriptor must not inherit the old
/// window queue.
#[test]
fn elastic_window_resets_across_retries() {
    let stm = Stm::new();
    let vars: Vec<_> = (0..8).map(|i| stm.new_tvar(i as i64)).collect();
    let attempts = AtomicU32::new(0);
    stm.run(TxParams::new(Semantics::Elastic { window: 2 }), |tx| {
        let n = attempts.fetch_add(1, Ordering::Relaxed);
        // Each attempt reads all 8 vars through a window of 2; 6 cuts.
        let mut acc = 0i64;
        for v in &vars {
            acc += v.read(tx)?;
        }
        assert_eq!(tx.cut_count(), 6, "cut count must restart per attempt");
        assert_eq!(tx.live_reads(), 2, "stale window entries survived descriptor reuse");
        if n == 0 {
            return tx.retry();
        }
        Ok(std::hint::black_box(acc))
    });
    assert_eq!(attempts.load(Ordering::Relaxed), 2);
}

/// A long elastic traversal churns hundreds of reads through a small
/// cut window: the read index must keep absorbing insert+remove cycles
/// (tombstone pressure) without hanging or growing with the churn.
#[test]
fn long_elastic_traversal_survives_index_churn() {
    let stm = Stm::new();
    let vars: Vec<_> = (0..400).map(|i| stm.new_tvar(i as i64)).collect();
    let sum = stm.run(TxParams::new(Semantics::Elastic { window: 16 }), |tx| {
        let mut acc = 0i64;
        for v in &vars {
            acc += v.read(tx)?;
        }
        assert_eq!(tx.live_reads(), 16);
        Ok(acc)
    });
    assert_eq!(sum, (0..400i64).sum::<i64>());
}

/// Large write sets shrink back to pooled reuse without corrupting the
/// spilled address index (small-mode/spill boundary crossing).
#[test]
fn spilled_index_reuse_stays_correct() {
    let stm = Stm::new();
    let many: Vec<_> = (0..200).map(|_| stm.new_tvar(0u64)).collect();
    let few = stm.new_tvar(0u64);
    // Big transaction: spills the write index past small mode.
    stm.run(TxParams::default(), |tx| {
        for (i, v) in many.iter().enumerate() {
            v.write(tx, i as u64)?;
        }
        // Read-own-write through the spilled index.
        assert_eq!(many[137].read(tx)?, 137);
        Ok(())
    });
    // Small transaction on the same (pooled) descriptor: the index must
    // have fully forgotten the 200 addresses.
    stm.run(TxParams::default(), |tx| {
        assert_eq!(tx.pending_writes(), 0);
        assert_eq!(few.read(tx)?, 0);
        few.write(tx, 7)
    });
    for (i, v) in many.iter().enumerate() {
        assert_eq!(v.load_committed(), i as u64);
    }
    assert_eq!(few.load_committed(), 7);
}
