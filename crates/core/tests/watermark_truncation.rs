//! Watermark-driven retention under checkpoint-style pressure: a live
//! registered snapshot bound must pin every version it can reach, no
//! matter how hard writers churn past the `history_depth` floor — the
//! property the durable crate's checkpoint (a long snapshot scan racing
//! log truncation) leans on.
//!
//! Companion to the registry's own unit tests in `snapreg.rs`: those
//! check the watermark arithmetic; these check the end-to-end promise
//! through commit-time truncation in `VarCore`.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Barrier;

use polytm::{Semantics, Stm, StmConfig, TxParams};

/// Iteration scaling via `POLYTM_STRESS_SCALE` (a percentage; the
/// nightly job raises it).
fn scaled(n: u64) -> u64 {
    let pct = std::env::var("POLYTM_STRESS_SCALE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100)
        .max(1);
    (n * pct / 100).max(1)
}

fn threads() -> usize {
    std::env::var("POLYTM_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(2)
}

/// The unit case: one snapshot transaction registers its bound, then a
/// writer commits far more versions than the retention floor while the
/// snapshot is still live. The snapshot's re-read must return its
/// original value on the *first attempt* — a retry would mean the
/// registered bound lost a version to truncation.
#[test]
fn live_snapshot_bound_survives_churn_past_the_depth_floor() {
    // The smallest retention floor the config allows: every surviving
    // old version is the registry's doing, not the floor's.
    let stm = Stm::with_config(StmConfig { history_depth: 1, ..StmConfig::default() });
    let var = stm.new_tvar(0u64);
    let start_churn = Barrier::new(2);
    let churn_done = Barrier::new(2);
    let attempts = AtomicU32::new(0);

    std::thread::scope(|s| {
        let (stm_ref, var_ref) = (&stm, &var);
        let (attempts_ref, start_ref, done_ref) = (&attempts, &start_churn, &churn_done);
        s.spawn(move || {
            let observed = stm_ref.run(TxParams::new(Semantics::Snapshot), |t| {
                let first = attempts_ref.fetch_add(1, Ordering::SeqCst) == 0;
                let before = var_ref.read(t)?;
                if first {
                    // Hold the transaction (and its registered bound)
                    // open across the writer's entire burst.
                    start_ref.wait();
                    done_ref.wait();
                }
                let after = var_ref.read(t)?;
                assert_eq!(before, after, "snapshot re-read moved");
                Ok(after)
            });
            assert_eq!(observed, 0, "snapshot must see its registration-time state");
        });

        start_churn.wait();
        for i in 0..200u64 {
            stm.run(TxParams::default(), |t| var.write(t, i + 1));
        }
        churn_done.wait();
    });

    assert_eq!(
        attempts.load(Ordering::SeqCst),
        1,
        "a registered snapshot bound lost a reachable version to truncation"
    );
    assert_eq!(stm.stats().aborts_unavailable, 0);
}

/// The churn case (checkpoint-shaped): scanners repeatedly snapshot-sum
/// a transfer-conserved array while writers churn every location far
/// past the floor. Registered snapshots must never die unavailable, and
/// every cut must conserve the total.
#[test]
fn registered_snapshots_never_die_unavailable_under_churn() {
    const VARS: usize = 12;
    const INITIAL: i64 = 500;
    let stm = Stm::with_config(StmConfig { history_depth: 1, ..StmConfig::default() });
    let vars: Vec<_> = (0..VARS).map(|_| stm.new_tvar(INITIAL)).collect();
    let stop = AtomicBool::new(false);
    let expect = VARS as i64 * INITIAL;

    std::thread::scope(|s| {
        for tid in 0..threads().saturating_sub(1).max(1) {
            let (stm, vars, stop) = (&stm, &vars, &stop);
            s.spawn(move || {
                let mut seed = 0xA076_1D64_78BD_642Fu64 ^ tid as u64;
                let mut next = || {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (seed >> 33) as usize % VARS
                };
                while !stop.load(Ordering::Relaxed) {
                    let (a, b) = (next(), next());
                    stm.run(TxParams::default(), |t| {
                        let x = vars[a].read(t)?;
                        let y = vars[b].read(t)?;
                        if a != b {
                            vars[a].write(t, x - 1)?;
                            vars[b].write(t, y + 1)?;
                        }
                        Ok(())
                    });
                }
            });
        }

        let scans = scaled(300);
        for _ in 0..scans {
            let total: i64 = stm.run(TxParams::new(Semantics::Snapshot), |t| {
                let mut sum = 0;
                for var in &vars {
                    sum += var.read(t)?;
                }
                Ok(sum)
            });
            assert_eq!(total, expect, "snapshot cut tore under churn");
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        stm.stats().aborts_unavailable,
        0,
        "a registered snapshot bound was truncated out from under a live scan"
    );
}
