//! Contention-manager identity across retries and upgrades, plus the
//! per-attempt advisor hook's safety fallbacks.
//!
//! The regression of interest: a transaction upgraded to irrevocable
//! semantics (nested request or liveness fallback) must keep the birth
//! timestamp it aged under — otherwise Greedy-style aging, and the era
//! gate's age-ordered admission, stop ordering the very transaction the
//! upgrade was meant to rescue.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use polytm::{
    Abort, AttemptPlan, ClassId, ConflictArbiter, Greedy, RunTelemetry, Semantics, SemanticsSource,
    Stm, StmConfig, TxParams,
};

#[test]
fn fallback_upgrade_keeps_birth_timestamp() {
    let stm = Stm::with_config(StmConfig {
        irrevocable_fallback_after: Some(3),
        arbiter: ConflictArbiter::Greedy(Greedy::default()),
        ..StmConfig::default()
    });
    let v = stm.new_tvar(0i64);
    let seen: Mutex<Vec<(u64, Semantics)>> = Mutex::new(Vec::new());
    stm.run(TxParams::default(), |tx| {
        seen.lock().unwrap().push((tx.birth_ts(), tx.semantics()));
        if tx.semantics() != Semantics::Irrevocable {
            // Keep aborting until the liveness fallback upgrades us.
            return tx.retry();
        }
        v.write(tx, 1)?;
        Ok(())
    });
    let seen = seen.lock().unwrap();
    assert!(seen.len() >= 4, "three aborts then an upgraded attempt: {seen:?}");
    assert_eq!(seen.last().unwrap().1, Semantics::Irrevocable);
    let birth = seen[0].0;
    assert!(
        seen.iter().all(|&(ts, _)| ts == birth),
        "birth_ts must be stable across retries and the irrevocable upgrade: {seen:?}"
    );
    assert_eq!(stm.stats().irrevocable_upgrades, 1);
    assert_eq!(v.load_committed(), 1);
}

#[test]
fn nested_restart_upgrade_keeps_birth_timestamp() {
    let stm = Stm::new();
    let v = stm.new_tvar(0i64);
    let seen: Mutex<Vec<(u64, Semantics)>> = Mutex::new(Vec::new());
    stm.run(TxParams::default(), |tx| {
        seen.lock().unwrap().push((tx.birth_ts(), tx.semantics()));
        // Requesting irrevocable semantics inside a revocable parent
        // restarts the whole transaction irrevocably.
        tx.nested(Semantics::Irrevocable, |tx| {
            let cur = v.read(tx)?;
            v.write(tx, cur + 1)
        })
    });
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), 2, "one revocable attempt, one irrevocable restart: {seen:?}");
    assert_eq!(seen[1].1, Semantics::Irrevocable);
    assert_eq!(seen[0].0, seen[1].0, "birth_ts lost across RestartIrrevocable: {seen:?}");
    assert_eq!(v.load_committed(), 1);
}

/// A test advisor with a fixed plan, recording every observation.
struct FixedPlan {
    semantics: Semantics,
    plans: AtomicU32,
    observed: Mutex<Vec<RunTelemetry>>,
}

impl FixedPlan {
    fn new(semantics: Semantics) -> Self {
        Self { semantics, plans: AtomicU32::new(0), observed: Mutex::new(Vec::new()) }
    }
}

impl SemanticsSource for FixedPlan {
    fn plan(&self, _class: ClassId, _retries: u32, _requested: Semantics) -> AttemptPlan {
        self.plans.fetch_add(1, Ordering::Relaxed);
        AttemptPlan::semantics(self.semantics)
    }

    fn observe(&self, telemetry: &RunTelemetry) {
        self.observed.lock().unwrap().push(*telemetry);
    }
}

#[test]
fn advisor_plans_every_attempt_and_observes_the_run() {
    // The plan strengthens the request (weakening is vetoed by the
    // core — see tests/plan_guardrails.rs).
    let advisor = Arc::new(FixedPlan::new(Semantics::Opaque));
    let stm = Stm::with_advisor(StmConfig::default(), Arc::clone(&advisor) as _);
    let v = stm.new_tvar(0i64);
    let params = TxParams::new(Semantics::elastic()).with_class(ClassId(4));
    let ran_under = stm.run(params, |tx| {
        let cur = v.read(tx)?;
        v.write(tx, cur + 1)?;
        Ok(tx.semantics())
    });
    assert_eq!(ran_under, Semantics::Opaque, "plan must override the requested semantics");
    assert_eq!(advisor.plans.load(Ordering::Relaxed), 1);
    let obs = advisor.observed.lock().unwrap();
    assert_eq!(obs.len(), 1);
    assert_eq!(obs[0].class, ClassId(4));
    assert_eq!(obs[0].requested, Semantics::elastic());
    assert_eq!(obs[0].committed_semantics, Semantics::Opaque);
    assert!(obs[0].wrote);
    assert_eq!(obs[0].retries, 0);
}

#[test]
fn requested_irrevocable_is_never_downgraded_by_a_plan() {
    // The closure of a caller-requested irrevocable run is written to
    // execute exactly once; an advisor plan must not weaken that.
    let advisor = Arc::new(FixedPlan::new(Semantics::elastic()));
    let stm = Stm::with_advisor(StmConfig::default(), Arc::clone(&advisor) as _);
    let v = stm.new_tvar(0i64);
    let params = TxParams::new(Semantics::Irrevocable).with_class(ClassId(2));
    let ran_under = stm.run(params, |tx| {
        let cur = v.read(tx)?;
        v.write(tx, cur + 1)?;
        Ok(tx.semantics())
    });
    assert_eq!(ran_under, Semantics::Irrevocable);
    assert_eq!(v.load_committed(), 1);
    let obs = advisor.observed.lock().unwrap();
    assert_eq!(obs.len(), 1);
    assert_eq!(obs[0].committed_semantics, Semantics::Irrevocable);
    assert!(!obs[0].upgraded, "requested, not upgraded");
    assert_eq!(stm.stats().irrevocable_upgrades, 0);
}

#[test]
fn requested_snapshot_keeps_an_atomic_view() {
    // A scan that asks for Snapshot relies on observing one consistent
    // cut; a plan may strengthen that (Opaque/Irrevocable) but must not
    // weaken it to elastic, whose sliding window can show a torn cut.
    let advisor = Arc::new(FixedPlan::new(Semantics::elastic()));
    let stm = Stm::with_advisor(StmConfig::default(), Arc::clone(&advisor) as _);
    let v = stm.new_tvar(0i64);
    let params = TxParams::new(Semantics::Snapshot).with_class(ClassId(5));
    let ran_under = stm.run(params, |tx| {
        v.read(tx)?;
        Ok(tx.semantics())
    });
    assert_eq!(ran_under, Semantics::Snapshot, "elastic plan must not weaken a snapshot request");
    // A strengthening plan is honoured.
    let strengthen = Arc::new(FixedPlan::new(Semantics::Opaque));
    let stm = Stm::with_advisor(StmConfig::default(), Arc::clone(&strengthen) as _);
    let v = stm.new_tvar(0i64);
    let ran_under = stm.run(TxParams::new(Semantics::Snapshot).with_class(ClassId(5)), |tx| {
        v.read(tx)?;
        Ok(tx.semantics())
    });
    assert_eq!(ran_under, Semantics::Opaque);
}

#[test]
fn plan_directed_escalation_is_accounted_as_an_upgrade() {
    // An advisor that escalates to irrevocable must show up in the
    // upgrade statistics and in the run's telemetry.
    let advisor = Arc::new(FixedPlan::new(Semantics::Irrevocable));
    let stm = Stm::with_advisor(StmConfig::default(), Arc::clone(&advisor) as _);
    let v = stm.new_tvar(0i64);
    stm.run(TxParams::new(Semantics::Opaque).with_class(ClassId(3)), |tx| v.write(tx, 1));
    assert_eq!(v.load_committed(), 1);
    assert_eq!(stm.stats().irrevocable_upgrades, 1);
    assert_eq!(stm.stats().irrevocable_commits, 1);
    let obs = advisor.observed.lock().unwrap();
    assert!(obs[0].upgraded, "plan-directed escalation is an upgrade");
    assert_eq!(obs[0].committed_semantics, Semantics::Irrevocable);
}

#[test]
fn untagged_runs_bypass_the_advisor() {
    let advisor = Arc::new(FixedPlan::new(Semantics::Snapshot));
    let stm = Stm::with_advisor(StmConfig::default(), Arc::clone(&advisor) as _);
    let v = stm.new_tvar(0i64);
    // No class: the run must never consult the advisor (whose Snapshot
    // plan would reject this write).
    stm.run(TxParams::new(Semantics::Opaque), |tx| v.write(tx, 7));
    assert_eq!(advisor.plans.load(Ordering::Relaxed), 0);
    assert!(advisor.observed.lock().unwrap().is_empty());
    assert_eq!(v.load_committed(), 7);
}

#[test]
fn injected_snapshot_on_a_writing_class_falls_back_to_requested() {
    let advisor = Arc::new(FixedPlan::new(Semantics::Snapshot));
    let stm = Stm::with_advisor(StmConfig::default(), Arc::clone(&advisor) as _);
    let v = stm.new_tvar(0i64);
    let params = TxParams::new(Semantics::Opaque).with_class(ClassId(1));
    // A mis-advised writing class must still commit — under the
    // requested semantics — rather than loop on ReadOnlyViolation.
    stm.run(params, |tx| {
        let cur = v.read(tx)?;
        v.write(tx, cur + 1)
    });
    assert_eq!(v.load_committed(), 1);
    let obs = advisor.observed.lock().unwrap();
    assert_eq!(obs.len(), 1);
    assert!(obs[0].read_only_violation, "the advisor must learn its Snapshot was rejected");
    assert!(obs[0].wrote);
    assert_eq!(obs[0].committed_semantics, Semantics::Opaque);
    assert!(obs[0].retries >= 1);
}

#[test]
fn advisor_arbiter_override_drives_backoff_and_conflicts() {
    // A plan can override the contention manager per attempt; verify the
    // override reaches the attempt by running a Suicide plan against a
    // Greedy default and checking the run still completes (Suicide aborts
    // on conflict instead of waiting, so any livelock here would hang the
    // test under contention).
    struct SuicidePlan;
    impl SemanticsSource for SuicidePlan {
        fn plan(&self, _class: ClassId, _retries: u32, requested: Semantics) -> AttemptPlan {
            AttemptPlan {
                semantics: requested,
                arbiter: Some(ConflictArbiter::Suicide(polytm::Suicide)),
            }
        }
        fn observe(&self, _telemetry: &RunTelemetry) {}
    }
    let stm = Stm::with_advisor(
        StmConfig { arbiter: ConflictArbiter::Greedy(Greedy::default()), ..StmConfig::default() },
        Arc::new(SuicidePlan),
    );
    let v = stm.new_tvar(0i64);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..200 {
                    stm.run(TxParams::new(Semantics::Opaque).with_class(ClassId(0)), |tx| {
                        let cur = v.read(tx)?;
                        v.write(tx, cur + 1)
                    });
                }
            });
        }
    });
    assert_eq!(v.load_committed(), 800);
}

#[test]
fn user_requested_snapshot_violation_still_surfaces() {
    // The fallback only covers *injected* snapshots: a caller who asks
    // for Snapshot and writes keeps the read-only violation semantics
    // (a retry loop; probe one attempt via try_run + cancel).
    let stm = Stm::new();
    let v = stm.new_tvar(0i64);
    let mut attempts = 0u32;
    let res = stm.try_run(TxParams::new(Semantics::Snapshot), |tx| {
        attempts += 1;
        if attempts > 1 {
            return tx.cancel::<()>();
        }
        match v.write(tx, 1) {
            Err(Abort::ReadOnlyViolation) => Err(Abort::ReadOnlyViolation),
            other => panic!("write under Snapshot must be a ReadOnlyViolation: {other:?}"),
        }
    });
    assert!(res.is_err(), "cancelled after observing the violation");
    assert_eq!(v.load_committed(), 0);
}
