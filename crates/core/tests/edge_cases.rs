//! Edge-case and robustness tests for the STM core: panic safety, odd
//! configurations, large transactions, and API misuse that must fail
//! loudly rather than corrupt state.

use std::sync::atomic::{AtomicU32, Ordering};

use polytm::{Semantics, Stm, StmConfig, TArray, TVar, TxParams};

#[test]
fn panic_in_closure_releases_reentrancy_guard() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.run(TxParams::default(), |_tx| -> polytm::TxResult<()> {
            panic!("user bug");
        })
    }));
    assert!(result.is_err());
    // The thread must be able to run transactions again.
    stm.run(TxParams::default(), |tx| x.write(tx, 1));
    assert_eq!(x.load_committed(), 1);
}

#[test]
fn panic_mid_transaction_publishes_nothing() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.run(TxParams::default(), |tx| {
            x.write(tx, 999)?;
            panic!("after buffered write");
            #[allow(unreachable_code)]
            Ok(())
        })
    }));
    assert_eq!(x.load_committed(), 0, "buffered writes must die with the panic");
    // And the location must not be left locked.
    stm.run(TxParams::default(), |tx| x.write(tx, 5));
    assert_eq!(x.load_committed(), 5);
}

#[test]
fn irrevocable_panic_releases_the_gate() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        stm.run(TxParams::new(Semantics::Irrevocable), |tx| {
            let _ = x.read(tx)?;
            panic!("irrevocable body panicked before any write");
            #[allow(unreachable_code)]
            Ok(())
        })
    }));
    // If the gate leaked, this commit would deadlock.
    stm.run(TxParams::default(), |tx| x.write(tx, 1));
    assert_eq!(x.load_committed(), 1);
}

#[test]
fn untagged_tvar_works_with_any_stm() {
    // TVar::new creates an untagged var (stm_id 0): usable, but without
    // the debug pairing check.
    let stm = Stm::new();
    let x: TVar<i64> = TVar::new(5);
    let v = stm.run(TxParams::default(), |tx| {
        x.modify(tx, |v| v + 1)?;
        x.read(tx)
    });
    assert_eq!(v, 6);
}

#[test]
fn large_write_set_commits_atomically() {
    let stm = Stm::new();
    let vars: Vec<_> = (0..2_000).map(|_| stm.new_tvar(0u64)).collect();
    stm.run(TxParams::default(), |tx| {
        for (i, v) in vars.iter().enumerate() {
            v.write(tx, i as u64)?;
        }
        Ok(())
    });
    for (i, v) in vars.iter().enumerate() {
        assert_eq!(v.load_committed(), i as u64);
    }
    assert_eq!(stm.stats().commits, 1);
}

#[test]
fn duplicate_writes_keep_last_value_single_version_bump() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    stm.run(TxParams::default(), |tx| {
        for i in 0..100 {
            x.write(tx, i)?;
        }
        Ok(())
    });
    assert_eq!(x.load_committed(), 99);
    // One commit => the global clock advanced exactly once and the var
    // carries that single new version.
    assert_eq!(stm.clock_now(), 1);
    assert_eq!(x.committed_version(), 1);
    assert_eq!(stm.stats().commits, 1);
}

#[test]
fn write_then_read_then_write_roundtrips() {
    let stm = Stm::new();
    let x = stm.new_tvar(String::new());
    stm.run(TxParams::default(), |tx| {
        x.write(tx, "a".to_string())?;
        let mut v = x.read(tx)?;
        v.push('b');
        x.write(tx, v)?;
        assert_eq!(x.read(tx)?, "ab");
        Ok(())
    });
    assert_eq!(x.load_committed(), "ab");
}

#[test]
fn elastic_window_one_is_the_weakest_read_chain() {
    let stm = Stm::new();
    let vars: Vec<_> = (0..10).map(|i| stm.new_tvar(i as i64)).collect();
    stm.run(TxParams::new(Semantics::Elastic { window: 1 }), |tx| {
        for v in &vars {
            v.read(tx)?;
        }
        Ok(())
    });
    assert_eq!(stm.stats().elastic_cuts, 9);
}

#[test]
fn zero_history_snapshot_retries_but_terminates() {
    // With history_depth 0, a snapshot read races truncation constantly;
    // it must still terminate (fresh bound each retry).
    let stm = Stm::with_config(StmConfig { history_depth: 0, ..StmConfig::default() });
    let x = stm.new_tvar(0i64);
    std::thread::scope(|s| {
        let stm_ref = &stm;
        let xh = &x;
        s.spawn(move || {
            for i in 0..500 {
                stm_ref.run(TxParams::default(), |tx| xh.write(tx, i));
            }
        });
        for _ in 0..100 {
            let _ = stm.run(TxParams::new(Semantics::Snapshot), |tx| x.read(tx));
        }
    });
}

#[test]
fn snapshot_ignores_later_commits() {
    let stm = Stm::new();
    let x = stm.new_tvar(1i64);
    let y = stm.new_tvar(1i64);
    // A snapshot transaction that reads x, then (from another thread)
    // both vars are rewritten, then reads y: it must see the OLD y.
    let observed = std::thread::scope(|s| {
        let (tx_go, rx_go) = std::sync::mpsc::channel::<()>();
        let (tx_done, rx_done) = std::sync::mpsc::channel::<()>();
        let stm_ref = &stm;
        let (xh, yh) = (&x, &y);
        s.spawn(move || {
            rx_go.recv().unwrap();
            stm_ref.run(TxParams::default(), |t| {
                xh.write(t, 2)?;
                yh.write(t, 2)
            });
            tx_done.send(()).unwrap();
        });
        let attempts = AtomicU32::new(0);
        stm.run(TxParams::new(Semantics::Snapshot), |t| {
            let n = attempts.fetch_add(1, Ordering::SeqCst);
            let a = x.read(t)?;
            if n == 0 {
                tx_go.send(()).unwrap();
                rx_done.recv().unwrap();
            }
            let b = y.read(t)?;
            Ok((a, b))
        })
    });
    assert_eq!(observed, (1, 1), "snapshot must read from its start time");
}

#[test]
fn two_stms_are_independent() {
    let a = Stm::new();
    let b = Stm::new();
    let xa = a.new_tvar(0i64);
    let xb = b.new_tvar(0i64);
    a.run(TxParams::default(), |tx| xa.write(tx, 1));
    b.run(TxParams::default(), |tx| xb.write(tx, 2));
    assert_eq!(a.stats().commits, 1);
    assert_eq!(b.stats().commits, 1);
    assert_ne!(a.id(), b.id());
}

#[test]
fn tarray_is_usable_across_threads() {
    let stm = Stm::new();
    let arr = TArray::new(&stm, 8, 0u64);
    std::thread::scope(|s| {
        for t in 0..4usize {
            let stm = &stm;
            let arr = arr.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    stm.run(TxParams::default(), |tx| {
                        let v = arr.get(tx, t % 8)?;
                        arr.set(tx, t % 8, v + 1)
                    });
                }
            });
        }
    });
    let total: u64 = arr.snapshot_atomic(&stm).iter().sum();
    assert_eq!(total, 800);
}

#[test]
fn stats_reset_between_phases() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    stm.run(TxParams::default(), |tx| x.write(tx, 1));
    assert_eq!(stm.stats().commits, 1);
    stm.reset_stats();
    assert_eq!(stm.stats().commits, 0);
    stm.run(TxParams::default(), |tx| x.write(tx, 2));
    assert_eq!(stm.stats().commits, 1);
}

#[test]
fn read_version_visible_through_api() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    stm.run(TxParams::default(), |tx| x.write(tx, 1));
    let clock = stm.clock_now();
    stm.run(TxParams::default(), |tx| {
        assert_eq!(tx.read_version(), clock);
        assert!(tx.birth_ts() > 0);
        assert_eq!(tx.pending_writes(), 0);
        let _ = x.read(tx)?;
        assert_eq!(tx.live_reads(), 1);
        Ok(())
    });
}
