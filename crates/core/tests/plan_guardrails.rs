//! Guardrails on advisor plans: a `SemanticsSource` may strengthen a
//! classed run or hand it Snapshot's atomic view, but may never weaken
//! the discipline the caller requested — no elastic plan for a
//! requested-opaque class, no narrowed elastic window. These are the
//! invariants `polytm-kv` relies on when it classes its probe-writing
//! operations (an elastic cut across an open-addressing probe chain can
//! admit duplicate inserts, so those classes *request* opaque).

use std::sync::Arc;

use polytm::{
    AttemptPlan, ClassId, RunTelemetry, Semantics, SemanticsSource, Stm, StmConfig, TxParams,
};

/// An advisor that serves one fixed semantics to every class.
struct FixedPlan(Semantics);

impl SemanticsSource for FixedPlan {
    fn plan(&self, _class: ClassId, _retries: u32, _requested: Semantics) -> AttemptPlan {
        AttemptPlan::semantics(self.0)
    }
    fn observe(&self, _telemetry: &RunTelemetry) {}
}

fn stm_with_plan(plan: Semantics) -> Stm {
    Stm::with_advisor(StmConfig::default(), Arc::new(FixedPlan(plan)))
}

/// The semantics the first attempt of a classed run actually executes
/// under, observed from inside the closure.
fn served(stm: &Stm, requested: Semantics) -> Semantics {
    stm.run(TxParams::new(requested).with_class(ClassId(0)), |tx| Ok(tx.semantics()))
}

#[test]
fn elastic_plan_never_weakens_a_requested_opaque_class() {
    let stm = stm_with_plan(Semantics::elastic());
    assert_eq!(served(&stm, Semantics::Opaque), Semantics::Opaque);
}

#[test]
fn elastic_plan_never_narrows_a_requested_window() {
    let stm = stm_with_plan(Semantics::elastic()); // window 2
    assert_eq!(
        served(&stm, Semantics::Elastic { window: 8 }),
        Semantics::Elastic { window: 8 },
        "a structure-widened window is a correctness parameter, not advisor-owned"
    );
}

#[test]
fn wider_elastic_plans_are_served() {
    let stm = stm_with_plan(Semantics::Elastic { window: 16 });
    assert_eq!(served(&stm, Semantics::elastic()), Semantics::Elastic { window: 16 });
}

#[test]
fn opaque_plan_strengthens_a_requested_elastic_class() {
    let stm = stm_with_plan(Semantics::Opaque);
    assert_eq!(served(&stm, Semantics::elastic()), Semantics::Opaque);
}

#[test]
fn snapshot_plan_is_the_admissible_weakening_for_read_only_runs() {
    let stm = stm_with_plan(Semantics::Snapshot);
    assert_eq!(served(&stm, Semantics::Opaque), Semantics::Snapshot);
    assert_eq!(served(&stm, Semantics::elastic()), Semantics::Snapshot);
}

#[test]
fn snapshot_plan_on_a_writing_run_falls_back_to_the_request() {
    let stm = stm_with_plan(Semantics::Snapshot);
    let v = stm.new_tvar(0i64);
    // The injected snapshot hits the write, aborts with
    // ReadOnlyViolation, and the run is transparently re-run under the
    // requested (opaque) semantics — the write must land.
    stm.run(TxParams::new(Semantics::Opaque).with_class(ClassId(1)), |tx| {
        let cur = v.read(tx)?;
        v.write(tx, cur + 1)
    });
    assert_eq!(v.load_committed(), 1);
}

#[test]
fn unclassed_runs_ignore_the_advisor_entirely() {
    let stm = stm_with_plan(Semantics::Snapshot);
    let got = stm.run(TxParams::new(Semantics::Opaque), |tx| Ok(tx.semantics()));
    assert_eq!(got, Semantics::Opaque);
}

#[test]
fn oversized_write_payloads_are_counted() {
    // 5 words cannot live inline; the buffered write takes the boxed
    // slow path and must show up in the stats.
    assert!(!polytm::write_payload_fits_inline::<[u64; 5]>());
    assert!(polytm::write_payload_fits_inline::<u64>());
    assert!(polytm::write_payload_fits_inline::<[u64; polytm::INLINE_WRITE_WORDS]>());

    let stm = Stm::new();
    let big = stm.new_tvar([0u64; 5]);
    let small = stm.new_tvar(0u64);
    stm.run(TxParams::default(), |tx| {
        small.write(tx, 1)?;
        big.write(tx, [1, 2, 3, 4, 5])
    });
    let stats = stm.stats();
    assert_eq!(stats.boxed_writes, 1, "exactly the oversized write is counted");
    assert_eq!(big.load_committed(), [1, 2, 3, 4, 5]);
    // Overwriting the same oversized location in one transaction counts
    // each buffered write (each one allocates).
    stm.reset_stats();
    stm.run(TxParams::default(), |tx| {
        big.write(tx, [9, 9, 9, 9, 9])?;
        big.write(tx, [7, 7, 7, 7, 7])
    });
    assert_eq!(stm.stats().boxed_writes, 2);
}
