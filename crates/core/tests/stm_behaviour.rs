//! Behavioural tests for the polymorphic STM: single-threaded protocol
//! behaviour plus deterministic cross-thread interleavings (including the
//! paper's Figure 1 schedule driven through the real implementation).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc::channel;

use polytm::{Abort, NestingPolicy, Semantics, Stm, StmConfig, TxParams};

fn no_fallback_config() -> StmConfig {
    StmConfig { irrevocable_fallback_after: None, ..StmConfig::default() }
}

#[test]
fn read_write_commit_roundtrip() {
    let stm = Stm::new();
    let x = stm.new_tvar(1i64);
    let old = stm.run(TxParams::default(), |t| {
        let v = x.read(t)?;
        x.write(t, v + 41)?;
        Ok(v)
    });
    assert_eq!(old, 1);
    assert_eq!(x.load_committed(), 42);
    assert_eq!(stm.stats().commits, 1);
}

#[test]
fn read_own_write_is_visible_before_commit() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    stm.run(TxParams::default(), |t| {
        x.write(t, 7)?;
        assert_eq!(x.read(t)?, 7);
        x.write(t, 8)?;
        assert_eq!(x.read(t)?, 8);
        Ok(())
    });
    assert_eq!(x.load_committed(), 8);
}

#[test]
fn modify_and_replace() {
    let stm = Stm::new();
    let x = stm.new_tvar(10i64);
    let prev = stm.run(TxParams::default(), |t| {
        x.modify(t, |v| v * 2)?;
        x.replace(t, 99)
    });
    assert_eq!(prev, 20);
    assert_eq!(x.load_committed(), 99);
}

#[test]
fn committed_version_tracks_clock() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    assert_eq!(x.committed_version(), 0);
    stm.run(TxParams::default(), |t| x.write(t, 1));
    let v1 = x.committed_version();
    assert!(v1 >= 1);
    stm.run(TxParams::default(), |t| x.write(t, 2));
    assert!(x.committed_version() > v1);
}

#[test]
fn tvar_clone_aliases_same_register() {
    let stm = Stm::new();
    let x = stm.new_tvar(5i64);
    let alias = x.clone();
    assert!(polytm::TVar::ptr_eq(&x, &alias));
    assert_eq!(x.addr(), alias.addr());
    stm.run(TxParams::default(), |t| alias.write(t, 6));
    assert_eq!(x.load_committed(), 6);
}

#[test]
fn non_copy_value_types() {
    let stm = Stm::new();
    let s = stm.new_tvar(String::from("a"));
    let v = stm.new_tvar(vec![1, 2, 3]);
    stm.run(TxParams::default(), |t| {
        let mut cur = s.read(t)?;
        cur.push('b');
        s.write(t, cur)?;
        v.modify(t, |mut xs| {
            xs.push(4);
            xs
        })
    });
    assert_eq!(s.load_committed(), "ab");
    assert_eq!(v.load_committed(), vec![1, 2, 3, 4]);
}

/// Drives the paper's Figure 1 interleaving through the real STM:
///
/// ```text
/// p1 (semantics under test): r(x)          r(y)          r(z) commit
/// helper:                         w(z);commit    w(x);commit
/// ```
///
/// Returns (number of attempts p1 needed, values read by the committed
/// attempt).
fn figure1_attempts(sem: Semantics) -> (u32, (i64, i64, i64)) {
    let stm = Stm::with_config(no_fallback_config());
    let x = stm.new_tvar(0i64);
    let y = stm.new_tvar(0i64);
    let z = stm.new_tvar(0i64);
    let attempts = AtomicU32::new(0);

    let result = std::thread::scope(|s| {
        let (req_tx, req_rx) = channel::<u8>();
        let (done_tx, done_rx) = channel::<()>();
        let stm_ref = &stm;
        let (xh, zh) = (&x, &z);
        s.spawn(move || {
            while let Ok(which) = req_rx.recv() {
                stm_ref.run(TxParams::default(), |t| {
                    if which == 0 {
                        zh.write(t, 100)
                    } else {
                        xh.write(t, 200)
                    }
                });
                done_tx.send(()).unwrap();
            }
        });

        let out = stm.run(TxParams::new(sem), |t| {
            let n = attempts.fetch_add(1, Ordering::SeqCst);
            let a = x.read(t)?;
            if n == 0 {
                req_tx.send(0).unwrap();
                done_rx.recv().unwrap();
            }
            let b = y.read(t)?;
            if n == 0 {
                req_tx.send(1).unwrap();
                done_rx.recv().unwrap();
            }
            let c = z.read(t)?;
            Ok((a, b, c))
        });
        drop(req_tx);
        out
    });
    (attempts.load(Ordering::SeqCst), result)
}

#[test]
fn figure1_elastic_accepts_the_schedule() {
    let (attempts, (a, b, c)) = figure1_attempts(Semantics::elastic());
    assert_eq!(attempts, 1, "the weak (elastic) transaction must not abort");
    // p1 saw x before the overwrite, and z after: exactly the paper's
    // point — no single point holds all three, yet each adjacent pair is
    // consistent.
    assert_eq!((a, b, c), (0, 0, 100));
}

#[test]
fn figure1_monomorphic_rejects_the_schedule() {
    let (attempts, (a, b, c)) = figure1_attempts(Semantics::Opaque);
    assert!(attempts >= 2, "the monomorphic transaction must abort at least once");
    // The committed (re-executed) attempt sees the final state.
    assert_eq!((a, b, c), (200, 0, 100));
}

#[test]
fn elastic_window_cut_is_counted() {
    let stm = Stm::new();
    let vars: Vec<_> = (0..10).map(|i| stm.new_tvar(i as i64)).collect();
    let sum = stm.run(TxParams::weak(), |t| {
        let mut acc = 0;
        for v in &vars {
            acc += v.read(t)?;
        }
        Ok(acc)
    });
    assert_eq!(sum, 45);
    // 10 reads through a window of 2: 8 reads slid out.
    assert_eq!(stm.stats().elastic_cuts, 8);
}

#[test]
fn elastic_freezes_after_first_write() {
    // After its first write an elastic transaction must validate its
    // remaining window like an opaque transaction: a concurrent overwrite
    // of a window entry forces an abort.
    let stm = Stm::with_config(no_fallback_config());
    let x = stm.new_tvar(0i64);
    let w = stm.new_tvar(0i64);
    let y = stm.new_tvar(0i64);
    let attempts = AtomicU32::new(0);

    std::thread::scope(|s| {
        let (req_tx, req_rx) = channel::<()>();
        let (done_tx, done_rx) = channel::<()>();
        let stm_ref = &stm;
        let xh = &x;
        s.spawn(move || {
            while req_rx.recv().is_ok() {
                stm_ref.run(TxParams::default(), |t| xh.write(t, 1));
                done_tx.send(()).unwrap();
            }
        });
        stm.run(TxParams::weak(), |t| {
            let n = attempts.fetch_add(1, Ordering::SeqCst);
            let a = x.read(t)?;
            w.write(t, a + 1)?; // freezes the window: x becomes permanent
            if n == 0 {
                req_tx.send(()).unwrap();
                done_rx.recv().unwrap();
            }
            let _ = y.read(t)?; // needs extension; x changed -> abort
            Ok(())
        });
        drop(req_tx);
    });
    assert!(attempts.load(Ordering::SeqCst) >= 2, "write must freeze the elastic window");
}

#[test]
fn opaque_extension_succeeds_on_disjoint_writes() {
    // A concurrent commit to an *unrelated* location bumps the clock;
    // reading a location written after our start must extend, not abort.
    let stm = Stm::with_config(no_fallback_config());
    let x = stm.new_tvar(0i64);
    let y = stm.new_tvar(0i64);
    let attempts = AtomicU32::new(0);

    std::thread::scope(|s| {
        let (req_tx, req_rx) = channel::<()>();
        let (done_tx, done_rx) = channel::<()>();
        let stm_ref = &stm;
        let yh = &y;
        s.spawn(move || {
            while req_rx.recv().is_ok() {
                stm_ref.run(TxParams::default(), |t| yh.write(t, 5));
                done_tx.send(()).unwrap();
            }
        });
        let (a, b) = stm.run(TxParams::default(), |t| {
            let n = attempts.fetch_add(1, Ordering::SeqCst);
            let a = x.read(t)?;
            if n == 0 {
                req_tx.send(()).unwrap();
                done_rx.recv().unwrap();
            }
            let b = y.read(t)?;
            Ok((a, b))
        });
        drop(req_tx);
        assert_eq!((a, b), (0, 5));
    });
    assert_eq!(attempts.load(Ordering::SeqCst), 1, "extension must avoid the abort");
    assert_eq!(stm.stats().extensions, 1);
}

#[test]
fn rereading_a_mutated_location_aborts() {
    let stm = Stm::with_config(no_fallback_config());
    let x = stm.new_tvar(0i64);
    let attempts = AtomicU32::new(0);

    std::thread::scope(|s| {
        let (req_tx, req_rx) = channel::<()>();
        let (done_tx, done_rx) = channel::<()>();
        let stm_ref = &stm;
        let xh = &x;
        s.spawn(move || {
            while req_rx.recv().is_ok() {
                stm_ref.run(TxParams::default(), |t| xh.modify(t, |v| v + 1));
                done_tx.send(()).unwrap();
            }
        });
        let (a, b) = stm.run(TxParams::default(), |t| {
            let n = attempts.fetch_add(1, Ordering::SeqCst);
            let a = x.read(t)?;
            if n == 0 {
                req_tx.send(()).unwrap();
                done_rx.recv().unwrap();
            }
            let b = x.read(t)?;
            Ok((a, b))
        });
        drop(req_tx);
        assert_eq!(a, b, "a committed attempt must observe a single value");
    });
    assert!(attempts.load(Ordering::SeqCst) >= 2);
}

#[test]
fn snapshot_cannot_write() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    let mut observed = None;
    let r = stm.try_run(TxParams::new(Semantics::Snapshot), |t| match x.write(t, 1) {
        Err(e) => {
            observed = Some(e);
            t.cancel()
        }
        Ok(()) => Ok(()),
    });
    assert!(r.is_err(), "transaction must be cancelled");
    assert_eq!(observed, Some(Abort::ReadOnlyViolation));
    assert_eq!(x.load_committed(), 0);
}

#[test]
fn cancel_discards_all_effects() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    let r: Result<(), _> = stm.try_run(TxParams::default(), |t| {
        x.write(t, 123)?;
        t.cancel()
    });
    assert_eq!(r, Err(polytm::Canceled));
    assert_eq!(x.load_committed(), 0);
    assert_eq!(stm.stats().commits, 0);
}

#[test]
fn user_retry_reexecutes_with_backoff() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    let attempts = AtomicU32::new(0);
    stm.run(TxParams::default(), |t| {
        let n = attempts.fetch_add(1, Ordering::SeqCst);
        if n < 3 {
            t.retry()
        } else {
            x.write(t, 1)
        }
    });
    assert_eq!(attempts.load(Ordering::SeqCst), 4);
    assert_eq!(stm.stats().aborts_user_retry, 3);
    assert_eq!(x.load_committed(), 1);
}

#[test]
fn irrevocable_reads_and_writes_eagerly() {
    let stm = Stm::new();
    let x = stm.new_tvar(1i64);
    let y = stm.new_tvar(2i64);
    let sum = stm.run(TxParams::new(Semantics::Irrevocable), |t| {
        let a = x.read(t)?;
        x.write(t, a + 10)?;
        assert_eq!(x.read(t)?, a + 10, "irrevocable reads see own eager writes");
        let b = y.read(t)?;
        Ok(a + b)
    });
    assert_eq!(sum, 3);
    assert_eq!(x.load_committed(), 11);
    assert_eq!(stm.stats().irrevocable_commits, 1);
}

#[test]
#[should_panic(expected = "irrevocable")]
fn irrevocable_abort_panics() {
    let stm = Stm::new();
    let _: () = stm.run(TxParams::new(Semantics::Irrevocable), |t| t.retry());
}

#[test]
fn nested_semantics_follow_policy() {
    for (policy, expected) in [
        (NestingPolicy::Parameter, Semantics::elastic()),
        (NestingPolicy::Parent, Semantics::Opaque),
        (NestingPolicy::Strongest, Semantics::Opaque),
    ] {
        let stm = Stm::new();
        let x = stm.new_tvar(0i64);
        stm.run(TxParams::default(), |t| {
            assert_eq!(t.semantics(), Semantics::Opaque);
            t.nested_with_policy(Semantics::elastic(), policy, |inner| {
                assert_eq!(inner.semantics(), expected, "policy {policy:?}");
                x.read(inner)
            })?;
            assert_eq!(t.semantics(), Semantics::Opaque, "semantics restored");
            Ok(())
        });
    }
}

#[test]
fn nested_strongest_upgrades_weak_parent() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    stm.run(TxParams::weak(), |t| {
        t.nested_with_policy(Semantics::Opaque, NestingPolicy::Strongest, |inner| {
            assert_eq!(inner.semantics(), Semantics::Opaque);
            x.read(inner)
        })?;
        assert_eq!(t.semantics(), Semantics::elastic());
        Ok(())
    });
}

#[test]
fn nested_elastic_does_not_cut_parent_reads() {
    // An opaque parent reads many vars, then runs an elastic nested
    // traversal. The parent's reads must all remain live (validated).
    let stm = Stm::new();
    let parent_vars: Vec<_> = (0..5).map(|_| stm.new_tvar(1i64)).collect();
    let nested_vars: Vec<_> = (0..8).map(|_| stm.new_tvar(1i64)).collect();
    stm.run(TxParams::default(), |t| {
        for v in &parent_vars {
            v.read(t)?;
        }
        let before = t.live_reads();
        t.nested_with_policy(Semantics::elastic(), NestingPolicy::Parameter, |inner| {
            for v in &nested_vars {
                v.read(inner)?;
            }
            Ok(())
        })?;
        // All 5 parent reads live; the nested traversal kept at most its
        // window (2) live.
        assert!(t.live_reads() >= before, "parent reads must survive the nested block");
        assert!(t.live_reads() <= before + 2, "nested elastic reads must have been cut");
        Ok(())
    });
    assert!(stm.stats().elastic_cuts >= 6);
}

#[test]
fn nested_irrevocable_request_restarts_whole_transaction() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    let attempts = AtomicU32::new(0);
    stm.run(TxParams::default(), |t| {
        attempts.fetch_add(1, Ordering::SeqCst);
        t.nested_with_policy(Semantics::Irrevocable, NestingPolicy::Parameter, |inner| {
            assert_eq!(inner.semantics(), Semantics::Irrevocable);
            x.modify(inner, |v| v + 1)
        })
    });
    assert_eq!(attempts.load(Ordering::SeqCst), 2, "one revocable attempt, one irrevocable");
    assert_eq!(stm.stats().irrevocable_upgrades, 1);
    assert_eq!(x.load_committed(), 1);
}

#[test]
fn repeated_aborts_fall_back_to_irrevocable() {
    let stm =
        Stm::with_config(StmConfig { irrevocable_fallback_after: Some(2), ..StmConfig::default() });
    let x = stm.new_tvar(0i64);
    let attempts = AtomicU32::new(0);
    stm.run(TxParams::default(), |t| {
        attempts.fetch_add(1, Ordering::SeqCst);
        if t.semantics() == Semantics::Irrevocable {
            x.write(t, 1)
        } else {
            // Simulate a transaction that keeps losing conflicts.
            Err(Abort::Locked { addr: 0, owner: 0 })
        }
    });
    assert_eq!(x.load_committed(), 1);
    assert_eq!(stm.stats().irrevocable_upgrades, 1);
    assert_eq!(attempts.load(Ordering::SeqCst), 3);
}

#[test]
#[should_panic(expected = "nested")]
fn reentrant_run_panics() {
    let stm = Stm::new();
    let stm2 = Stm::new();
    stm.run(TxParams::default(), |_t| {
        // Even against a different Stm instance, re-entrancy on the same
        // thread is a bug (deadlock-prone); nested transactions must use
        // Transaction::nested.
        stm2.run(TxParams::default(), |_t2| Ok(()));
        Ok(())
    });
}

#[test]
fn snapshot_reads_are_mutually_consistent() {
    // Writer maintains x == y; snapshot readers must never see them
    // differ, even though they read the two vars at different times.
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    let y = stm.new_tvar(0i64);
    std::thread::scope(|s| {
        let stm_ref = &stm;
        let (xh, yh) = (&x, &y);
        s.spawn(move || {
            for _ in 0..500 {
                stm_ref.run(TxParams::default(), |t| {
                    let v = xh.read(t)?;
                    xh.write(t, v + 1)?;
                    yh.write(t, v + 1)
                });
            }
        });
        for _ in 0..200 {
            let (a, b) =
                stm.run(TxParams::new(Semantics::Snapshot), |t| Ok((x.read(t)?, y.read(t)?)));
            assert_eq!(a, b, "snapshot must observe the x == y invariant");
        }
    });
    assert_eq!(x.load_committed(), 500);
}

#[test]
fn nested_optimistic_block_inside_irrevocable_extends_without_deadlock() {
    // Regression: the nested optimistic read observes the parent's eager
    // write (published above the parent's read version), which forces a
    // read-version extension. The extension must not re-acquire the
    // revocation gate this thread already holds exclusively.
    let stm = Stm::new();
    let x = stm.new_tvar(1i64);
    let got = stm.run(TxParams::new(Semantics::Irrevocable), |t| {
        let a = x.read(t)?;
        x.write(t, a + 10)?; // eager publish bumps the clock past rv
        t.nested_with_policy(Semantics::Opaque, NestingPolicy::Parameter, |inner| {
            assert_eq!(inner.semantics(), Semantics::Opaque);
            inner.read_version(); // just observe; the read below extends
            x.read(inner)
        })
    });
    assert_eq!(got, 11);
    assert_eq!(x.load_committed(), 11);
}

#[test]
fn nested_revocable_writes_inside_irrevocable_are_published() {
    // Regression: writes buffered by a nested revocable block must be
    // published when the irrevocable parent commits, not dropped.
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    let y = stm.new_tvar(0i64);
    stm.run(TxParams::new(Semantics::Irrevocable), |t| {
        t.nested_with_policy(Semantics::elastic(), NestingPolicy::Parameter, |inner| {
            x.write(inner, 7)?;
            y.write(inner, 8)
        })?;
        // Read-own-write across the block boundary.
        assert_eq!(x.read(t)?, 7, "parent must see the nested buffered write");
        Ok(())
    });
    assert_eq!(x.load_committed(), 7);
    assert_eq!(y.load_committed(), 8);
}

#[test]
fn parent_eager_write_supersedes_nested_buffered_write() {
    // Program order: the nested block buffers x := 1, then the parent
    // eagerly writes x := 2. The later write must win at commit.
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    stm.run(TxParams::new(Semantics::Irrevocable), |t| {
        t.nested_with_policy(Semantics::Opaque, NestingPolicy::Parameter, |inner| {
            x.write(inner, 1)
        })?;
        x.write(t, 2)?;
        assert_eq!(x.read(t)?, 2);
        Ok(())
    });
    assert_eq!(x.load_committed(), 2);
}
