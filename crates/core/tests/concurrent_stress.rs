//! Concurrent stress tests: invariants that must hold under arbitrary
//! thread interleavings (conservation, atomicity, snapshot isolation,
//! mixed-semantics co-existence — the heart of "polymorphism").

use std::sync::atomic::{AtomicBool, Ordering};

use polytm::{ConflictArbiter, Semantics, Stm, StmConfig, TVar, TxParams};

/// Worker-thread count, env-gated for CI: `POLYTM_STRESS_THREADS`
/// (default 4, minimum 2 so every test still exercises real
/// concurrency). Tests whose thread count is structural (one thread per
/// role) ignore this and gate only their iteration counts.
fn threads() -> usize {
    std::env::var("POLYTM_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(2)
}

/// Scales an iteration count by `POLYTM_STRESS_SCALE` (a percentage;
/// default 100 = the written counts, minimum result 1). CI boxes set a
/// small percentage for wall-clock bounds; local runs are unweakened.
fn scaled(n: u64) -> u64 {
    let pct = std::env::var("POLYTM_STRESS_SCALE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100)
        .max(1);
    (n * pct / 100).max(1)
}

fn spawn_workers<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    std::thread::scope(|s| {
        for i in 0..n {
            let f = &f;
            s.spawn(move || f(i));
        }
    });
}

#[test]
fn concurrent_counter_increments_are_all_applied() {
    let stm = Stm::new();
    let counter = stm.new_tvar(0u64);
    let workers = threads();
    let per_thread = scaled(500);
    spawn_workers(workers, |_| {
        for _ in 0..per_thread {
            stm.run(TxParams::default(), |t| counter.modify(t, |v| v + 1));
        }
    });
    assert_eq!(counter.load_committed(), workers as u64 * per_thread);
    let stats = stm.stats();
    assert_eq!(stats.commits, workers as u64 * per_thread);
}

#[test]
fn bank_transfers_conserve_total() {
    let stm = Stm::new();
    const ACCOUNTS: usize = 16;
    const INITIAL: i64 = 1_000;
    let accounts: Vec<TVar<i64>> = (0..ACCOUNTS).map(|_| stm.new_tvar(INITIAL)).collect();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Transfer threads: move funds between pseudo-random accounts.
        let transfers = scaled(400);
        for tid in 0..threads() {
            let accounts = &accounts;
            let stm = &stm;
            let stop = &stop;
            s.spawn(move || {
                let mut seed = 0x9e37_79b9_7f4a_7c15u64 ^ (tid as u64);
                for _ in 0..transfers {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let from = (seed >> 33) as usize % ACCOUNTS;
                    let to = (seed >> 17) as usize % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    stm.run(TxParams::default(), |t| {
                        let a = accounts[from].read(t)?;
                        let b = accounts[to].read(t)?;
                        accounts[from].write(t, a - 1)?;
                        accounts[to].write(t, b + 1)
                    });
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
        // Auditor thread: the total must be invariant in *every* opaque
        // and snapshot view.
        let accounts = &accounts;
        let stm = &stm;
        let stop = &stop;
        s.spawn(move || {
            let expect = ACCOUNTS as i64 * INITIAL;
            while !stop.load(Ordering::Relaxed) {
                for sem in [Semantics::Opaque, Semantics::Snapshot, Semantics::elastic()] {
                    // NOTE: the elastic auditor reads through a window, so
                    // per the paper it is *not* guaranteed an atomic view
                    // of all accounts; we only assert on opaque/snapshot.
                    let total = stm.run(TxParams::new(sem), |t| {
                        let mut sum = 0i64;
                        for acc in accounts {
                            sum += acc.read(t)?;
                        }
                        Ok(sum)
                    });
                    if sem != Semantics::elastic() {
                        assert_eq!(total, expect, "atomic audit under {sem:?}");
                    }
                }
            }
        });
    });

    let final_total: i64 = accounts.iter().map(|a| a.load_committed()).sum();
    assert_eq!(final_total, ACCOUNTS as i64 * INITIAL);
}

#[test]
fn mixed_semantics_transactions_coexist() {
    // The core claim of the paper: transactions with distinct semantics
    // run concurrently in the same TM. Here opaque writers, elastic
    // searchers, snapshot auditors and an occasional irrevocable batch
    // run together over one array; the final state must equal the number
    // of successful increments.
    let stm = Stm::new();
    const SLOTS: usize = 32;
    let slots: Vec<TVar<u64>> = (0..SLOTS).map(|_| stm.new_tvar(0u64)).collect();

    let writes = scaled(600);
    let scans = scaled(200);
    let batches = scaled(30);
    spawn_workers(4, |tid| match tid {
        // opaque writer
        0 => {
            for i in 0..writes as usize {
                let idx = i % SLOTS;
                stm.run(TxParams::default(), |t| slots[idx].modify(t, |v| v + 1));
            }
        }
        // elastic traverser (read-only: result is a sample, not an atomic sum)
        1 => {
            for _ in 0..scans {
                let _ = stm.run(TxParams::weak(), |t| {
                    let mut sum = 0u64;
                    for s in &slots {
                        sum += s.read(t)?;
                    }
                    Ok(sum)
                });
            }
        }
        // snapshot auditor: sums must be monotonically non-decreasing
        // because slots only grow.
        2 => {
            let mut last = 0u64;
            for _ in 0..scans {
                let sum = stm.run(TxParams::new(Semantics::Snapshot), |t| {
                    let mut sum = 0u64;
                    for s in &slots {
                        sum += s.read(t)?;
                    }
                    Ok(sum)
                });
                assert!(sum >= last, "snapshot sums must not go backwards");
                last = sum;
            }
        }
        // irrevocable batch updates
        _ => {
            for i in 0..batches as usize {
                let idx = (i * 7) % SLOTS;
                stm.run(TxParams::new(Semantics::Irrevocable), |t| slots[idx].modify(t, |v| v + 1));
            }
        }
    });

    let total: u64 = slots.iter().map(|s| s.load_committed()).sum();
    assert_eq!(total, writes + batches);
}

#[test]
fn contention_managers_all_make_progress() {
    for arbiter in [
        ConflictArbiter::Suicide(polytm::Suicide),
        ConflictArbiter::Backoff(polytm::Backoff::default()),
        ConflictArbiter::Greedy(polytm::Greedy::default()),
    ] {
        let stm = Stm::with_config(StmConfig { arbiter, ..StmConfig::default() });
        let hot = stm.new_tvar(0u64);
        let workers = threads();
        let per_thread = scaled(200);
        spawn_workers(workers, |_| {
            for _ in 0..per_thread {
                stm.run(TxParams::default(), |t| hot.modify(t, |v| v + 1));
            }
        });
        assert_eq!(
            hot.load_committed(),
            workers as u64 * per_thread,
            "arbiter {} lost updates",
            arbiter.label()
        );
    }
}

#[test]
fn irrevocable_serializes_against_optimistic_commits() {
    let stm = Stm::new();
    let a = stm.new_tvar(0i64);
    let b = stm.new_tvar(0i64);
    // Invariant: a == b at every commit point.
    let per_thread = scaled(200);
    spawn_workers(3, |tid| {
        for _ in 0..per_thread {
            if tid == 0 {
                stm.run(TxParams::new(Semantics::Irrevocable), |t| {
                    let va = a.read(t)?;
                    a.write(t, va + 1)?;
                    // Irrevocable writes are eager, but the gate keeps any
                    // concurrent *commit* out until we finish.
                    let vb = b.read(t)?;
                    b.write(t, vb + 1)
                });
            } else {
                stm.run(TxParams::default(), |t| {
                    let va = a.read(t)?;
                    let vb = b.read(t)?;
                    assert_eq!(va, vb, "optimistic view must be atomic");
                    a.write(t, va + 1)?;
                    b.write(t, vb + 1)
                });
            }
        }
    });
    assert_eq!(a.load_committed(), 3 * per_thread as i64);
    assert_eq!(b.load_committed(), 3 * per_thread as i64);
}

#[test]
fn snapshot_history_exhaustion_retries_transparently() {
    // Tiny history depth + fast writer: snapshot transactions will hit
    // SnapshotUnavailable and must retry with a fresh bound, never
    // returning an inconsistent pair.
    let stm = Stm::with_config(StmConfig { history_depth: 1, ..StmConfig::default() });
    let x = stm.new_tvar(0i64);
    let y = stm.new_tvar(0i64);
    std::thread::scope(|s| {
        let stm_ref = &stm;
        let (xh, yh) = (&x, &y);
        s.spawn(move || {
            for _ in 0..scaled(1_000) {
                stm_ref.run(TxParams::default(), |t| {
                    let v = xh.read(t)?;
                    xh.write(t, v + 1)?;
                    yh.write(t, v + 1)
                });
            }
        });
        for _ in 0..scaled(300) {
            let (va, vb) =
                stm.run(TxParams::new(Semantics::Snapshot), |t| Ok((x.read(t)?, y.read(t)?)));
            assert_eq!(va, vb);
        }
    });
}

#[test]
fn many_vars_low_contention_scales_without_lost_updates() {
    let stm = Stm::new();
    const N: usize = 256;
    let vars: Vec<TVar<u64>> = (0..N).map(|_| stm.new_tvar(0u64)).collect();
    let workers = threads();
    let rounds = scaled(50);
    spawn_workers(workers, |tid| {
        // Each thread owns a stride of vars: almost no conflicts.
        for round in 0..rounds {
            for i in (tid..N).step_by(workers) {
                let _ = round;
                stm.run(TxParams::default(), |t| vars[i].modify(t, |v| v + 1));
            }
        }
    });
    for v in &vars {
        assert_eq!(v.load_committed(), rounds);
    }
}

/// The stats-conservation law: every closure invocation (attempt) ends
/// as exactly one of a commit, a cause-classified abort, or a cancel —
/// so `attempts == commits + aborts() + cancels` must hold exactly, no
/// matter how attempts interleave. The workload forces every abort
/// cause the counters classify: organic lock/validation conflicts on a
/// hot counter (opaque and elastic), user retries, user-forced
/// capacity/unavailable aborts, the `RestartIrrevocable` upgrade
/// (whose restarted attempt must still be accounted), and cancels
/// (which are deliberately *not* aborts and are counted by the test).
#[test]
fn attempts_conserve_as_commits_plus_aborts_plus_cancels() {
    use std::cell::Cell;
    use std::sync::atomic::AtomicU64;

    use polytm::Abort;

    let stm = Stm::with_config(StmConfig {
        // A low fallback keeps the upgrade path itself in play; the
        // identity must survive upgrades too.
        irrevocable_fallback_after: Some(8),
        ..StmConfig::default()
    });
    let counter = stm.new_tvar(0u64);
    let attempts = AtomicU64::new(0);
    let cancels = AtomicU64::new(0);

    // `.max(20)` guarantees every op variant below runs at least twice
    // even under an aggressive POLYTM_STRESS_SCALE.
    let runs = scaled(400).max(20);
    spawn_workers(threads(), |_| {
        for i in 0..runs {
            match i % 10 {
                // Hot opaque increments: organic lock/validation aborts.
                0..=3 => {
                    stm.run(TxParams::default(), |t| {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        counter.modify(t, |v| v + 1)
                    });
                }
                // Elastic increment: read-time conflicts classify as cuts.
                4 => {
                    stm.run(TxParams::new(Semantics::Elastic { window: 4 }), |t| {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        counter.modify(t, |v| v + 1)
                    });
                }
                // Snapshot read alongside the writers.
                5 => {
                    stm.run(TxParams::new(Semantics::Snapshot), |t| {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        counter.read(t)
                    });
                }
                // User retry twice, then commit.
                6 => {
                    let tries = Cell::new(0u32);
                    stm.run(TxParams::default(), |t| {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        let n = tries.get();
                        tries.set(n + 1);
                        if n < 2 {
                            return Err(Abort::Retry);
                        }
                        counter.modify(t, |v| v + 1)
                    });
                }
                // Forced capacity then unavailable aborts, then commit.
                7 => {
                    let tries = Cell::new(0u32);
                    stm.run(TxParams::default(), |t| {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        let n = tries.get();
                        tries.set(n + 1);
                        match n {
                            0 => Err(Abort::SnapshotCapacity { addr: 1 }),
                            1 => Err(Abort::SnapshotUnavailable { addr: 1 }),
                            _ => counter.read(t),
                        }
                    });
                }
                // RestartIrrevocable: the restarted attempt is an abort
                // (cause Other) and the re-run commits irrevocably.
                8 => {
                    let tries = Cell::new(0u32);
                    stm.run(TxParams::default(), |t| {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        let n = tries.get();
                        tries.set(n + 1);
                        if n == 0 {
                            return Err(Abort::RestartIrrevocable);
                        }
                        counter.modify(t, |v| v + 1)
                    });
                }
                // Cancel: reads, then abandons the run entirely.
                _ => {
                    let r = stm.try_run(TxParams::default(), |t| -> polytm::TxResult<()> {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        let _ = counter.read(t)?;
                        Err(Abort::Cancel)
                    });
                    assert!(r.is_err(), "a cancelling closure must surface Err(Canceled)");
                    cancels.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    });

    let s = stm.stats();
    assert_eq!(
        attempts.load(Ordering::Relaxed),
        s.commits + s.aborts() + cancels.load(Ordering::Relaxed),
        "attempts must equal commits + aborts + cancels; snapshot: {s:?}"
    );
    // The workload provably exercised each classified cause at least
    // once per worker (the forced branches are deterministic).
    let w = threads() as u64;
    assert!(s.aborts_user_retry >= 2 * w + w, "retries + restart-irrevocable attempts");
    assert!(s.aborts_capacity >= w);
    assert!(s.aborts_unavailable >= w);
    assert!(s.irrevocable_commits >= w, "each RestartIrrevocable re-run commits irrevocably");
    assert_eq!(cancels.load(Ordering::Relaxed), w * (runs / 10), "i % 10 == 9 cancels per worker");
}
