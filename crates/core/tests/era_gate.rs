//! Stress and interleaving regression tests for the irrevocable-era
//! gate: an optimistic begin or rv-extension racing an irrevocable
//! writer must never observe a half-applied eager-write window.
//!
//! The irrevocable writer publishes each eager write at its own write
//! version, so a read version sampled inside its window would let an
//! optimistic reader accept some of the writes (version <= rv) while
//! rejecting others — a torn view of an atomic transaction. The era
//! protocol (crates/core/src/gate.rs) must make that impossible without
//! any lock on the begin path.
//!
//! Structure note: the hosts running these tests may have a single CPU,
//! so each race is driven by the *observer*'s progress (the writer loops
//! and yields until the auditors have seen enough), never by a fixed
//! writer iteration count that could finish before an auditor runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use polytm::{Semantics, Stm, TxParams};

fn scaled(n: u64) -> u64 {
    let pct = std::env::var("POLYTM_STRESS_SCALE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100)
        .max(1);
    (n * pct / 100).max(1)
}

/// The core regression: an irrevocable writer moves value between `x`
/// and `y` (sum invariant 0) with *two separate eager writes*; read-only
/// opaque transactions beginning at arbitrary moments must always see
/// sum == 0. A read version sampled between the two eager writes would
/// see the decrement without the increment.
#[test]
fn optimistic_begin_never_lands_inside_an_eager_write_window() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    let y = stm.new_tvar(0i64);
    let stop = AtomicBool::new(false);
    let audits = AtomicU64::new(0);
    let target = scaled(2_000);

    std::thread::scope(|s| {
        let (stm, x, y, stop, audits) = (&stm, &x, &y, &stop, &audits);
        s.spawn(move || {
            let mut step = 0i64;
            while !stop.load(Ordering::Relaxed) {
                step += 1;
                let delta = 1 + (step % 5);
                stm.run(TxParams::new(Semantics::Irrevocable), |t| {
                    let vx = x.read(t)?;
                    // Window opens here: x published at its own wv...
                    x.write(t, vx - delta)?;
                    let vy = y.read(t)?;
                    // ...and y at a later wv. rv must not land between.
                    y.write(t, vy + delta)
                });
                // Single-CPU hosts: give the auditors a chance to begin
                // mid-stream rather than only between our transactions.
                std::thread::yield_now();
            }
        });
        for _ in 0..2 {
            s.spawn(move || {
                while audits.load(Ordering::Relaxed) < target {
                    let sum = stm.run(TxParams::default(), |t| Ok(x.read(t)? + y.read(t)?));
                    assert_eq!(sum, 0, "opaque view tore an irrevocable eager-write window");
                    audits.fetch_add(1, Ordering::Relaxed);
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
    assert!(audits.load(Ordering::Relaxed) >= target);
    assert_eq!(x.load_committed() + y.load_committed(), 0);
}

/// Same invariant through the rv-*extension* path: a long-running opaque
/// transaction reads a churn variable first (forcing extensions when it
/// later re-samples), then audits the invariant pair. The extension's
/// clock sample goes through the same era double-check as begin.
#[test]
fn rv_extension_never_lands_inside_an_eager_write_window() {
    let stm = Stm::new();
    let churn = stm.new_tvar(0u64);
    let x = stm.new_tvar(0i64);
    let y = stm.new_tvar(0i64);
    let stop = AtomicBool::new(false);
    let audits = AtomicU64::new(0);
    let target = scaled(1_000);

    std::thread::scope(|s| {
        let (stm, churn, x, y, stop, audits) = (&stm, &churn, &x, &y, &stop, &audits);
        // Irrevocable mover: multi-write window, sum stays 0.
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                stm.run(TxParams::new(Semantics::Irrevocable), |t| {
                    let vx = x.read(t)?;
                    x.write(t, vx + 7)?;
                    let vy = y.read(t)?;
                    y.write(t, vy - 7)
                });
                std::thread::yield_now();
            }
        });
        // Churn writer: forces later readers of `churn` to extend rv.
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                stm.run(TxParams::default(), |t| churn.modify(t, |v| v + 1));
                std::thread::yield_now();
            }
        });
        // Auditor: reads x first, churn second (the churn read's version
        // usually exceeds the start rv, triggering an extension that
        // must revalidate the x read), then y. Tears abort and retry —
        // but a successfully *returned* view must be atomic.
        s.spawn(move || {
            while audits.load(Ordering::Relaxed) < target {
                let (sx, _, sy) = stm.run(TxParams::default(), |t| {
                    let sx = x.read(t)?;
                    let c = churn.read(t)?;
                    let sy = y.read(t)?;
                    Ok((sx, c, sy))
                });
                assert_eq!(sx + sy, 0, "extended opaque view tore an irrevocable window");
                audits.fetch_add(1, Ordering::Relaxed);
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    assert!(audits.load(Ordering::Relaxed) >= target);
    assert_eq!(x.load_committed() + y.load_committed(), 0);
}

/// Optimistic *writing* commits racing the era drain: every committed
/// update must survive, and irrevocable counts land exactly once —
/// exercises committer registration (enter_commit) against the drain.
#[test]
fn writing_commits_and_irrevocable_writers_interleave_without_loss() {
    let stm = Stm::new();
    let counter = stm.new_tvar(0u64);
    let opt_done = AtomicU64::new(0);
    let irr_done = AtomicU64::new(0);

    std::thread::scope(|s| {
        let (stm, counter) = (&stm, &counter);
        for tid in 0..4usize {
            let opt_done = &opt_done;
            let irr_done = &irr_done;
            s.spawn(move || {
                for i in 0..scaled(500) {
                    if tid == 0 && i % 8 == 0 {
                        stm.run(TxParams::new(Semantics::Irrevocable), |t| {
                            counter.modify(t, |v| v + 1)
                        });
                        irr_done.fetch_add(1, Ordering::Relaxed);
                    } else {
                        stm.run(TxParams::default(), |t| counter.modify(t, |v| v + 1));
                        opt_done.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let expect = opt_done.load(Ordering::Relaxed) + irr_done.load(Ordering::Relaxed);
    assert_eq!(counter.load_committed(), expect, "updates lost across the era gate");
}

/// Concurrent irrevocable transactions must serialize (the era CAS is
/// the mutual exclusion; there is no RwLock anymore).
#[test]
fn concurrent_irrevocable_transactions_serialize() {
    let stm = Stm::new();
    let a = stm.new_tvar(0u64);
    let b = stm.new_tvar(0u64);
    let per_thread = scaled(300);
    std::thread::scope(|s| {
        let (stm, a, b) = (&stm, &a, &b);
        for _ in 0..4 {
            s.spawn(move || {
                for _ in 0..per_thread {
                    stm.run(TxParams::new(Semantics::Irrevocable), |t| {
                        let va = a.read(t)?;
                        a.write(t, va + 1)?;
                        // A second irrevocable running concurrently would
                        // interleave here and lose one of the updates.
                        let vb = b.read(t)?;
                        b.write(t, vb + 1)
                    });
                }
            });
        }
    });
    assert_eq!(a.load_committed(), 4 * per_thread);
    assert_eq!(b.load_committed(), 4 * per_thread);
}

/// Snapshot transactions sample rv through the same gate and must never
/// see a half-applied irrevocable window either (their reads come from
/// the version chain at rv).
#[test]
fn snapshot_views_exclude_eager_write_windows() {
    let stm = Stm::new();
    let x = stm.new_tvar(0i64);
    let y = stm.new_tvar(0i64);
    let stop = AtomicBool::new(false);
    let audits = AtomicU64::new(0);
    let target = scaled(1_000);
    std::thread::scope(|s| {
        let (stm, x, y, stop, audits) = (&stm, &x, &y, &stop, &audits);
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                stm.run(TxParams::new(Semantics::Irrevocable), |t| {
                    let vx = x.read(t)?;
                    x.write(t, vx + 3)?;
                    let vy = y.read(t)?;
                    y.write(t, vy - 3)
                });
                std::thread::yield_now();
            }
        });
        s.spawn(move || {
            while audits.load(Ordering::Relaxed) < target {
                let sum =
                    stm.run(TxParams::new(Semantics::Snapshot), |t| Ok(x.read(t)? + y.read(t)?));
                assert_eq!(sum, 0, "snapshot view tore an irrevocable window");
                audits.fetch_add(1, Ordering::Relaxed);
            }
            stop.store(true, Ordering::Relaxed);
        });
    });
    assert!(audits.load(Ordering::Relaxed) >= target);
}
