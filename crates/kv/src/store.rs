//! [`KvStore`]: a sharded transactional key-value store over the
//! polymorphic STM.
//!
//! ## Layout
//!
//! Keys hash to one of N **shards** (power of two, cache-padded so
//! shard headers never false-share). Each shard owns an open-addressed
//! **slot table** behind a `TVar<Table>`: a power-of-two array of
//! `TVar<Slot>` registers probed linearly, where a full slot holds the
//! key and a *per-record* `TVar<Value>`. Overwriting a record therefore
//! writes one value register — it never touches the slot array, so hot
//! updates conflict only with operations on the same key. Growing a
//! shard swaps the whole table in one monomorphic transaction (the same
//! move as `TxHashSet`'s transactional resize); record value registers
//! are carried over by handle, so in-flight value updates commute with
//! a concurrent resize.
//!
//! ## Cross-shard atomicity
//!
//! Sharding here is a *contention* structure, not a consistency
//! boundary: every operation is an STM transaction over plain `TVar`s,
//! so a [`KvStore::txn`] block spanning shards commits atomically like
//! any other transaction — commit acquires the write set's per-location
//! locks in global address order (deadlock-free) and validates the read
//! set at one point. There is no two-phase commit bolted on top; the
//! shards share one STM instance and one clock.
//!
//! ## Per-operation semantics
//!
//! * `get` runs **elastic** (requested): a probe is a search traversal,
//!   and cutting old probe reads behind the lookup is exactly the
//!   paper's `weak` use case.
//! * `put`/`delete`/`cas`/`modify`/`txn` run **opaque** (requested):
//!   an insert's correctness depends on the *entire* probe chain it
//!   examined (a cut probe read admits duplicate keys under
//!   concurrency), so writers request the discipline that validates
//!   every read. The classed constructors rely on the core's guarantee
//!   that an advisor plan never weakens a requested discipline.
//! * scans run **snapshot** (requested): one consistent cut across
//!   every shard, never aborting on read-write conflicts.

use std::sync::Arc;

use crossbeam_utils::CachePadded;
use polytm::{ClassId, CommitInfo, Semantics, Stm, TVar, Transaction, TxParams, TxResult};

use crate::value::Value;

/// Probe length at which a top-level write asks its shard to grow. The
/// trigger is probe pressure, not an occupancy counter: a shared
/// counter would serialize every insert in a shard, while probe length
/// is observed for free by the operation that suffers it.
const MAX_PROBE: usize = 8;

/// One open-addressing slot. `Full` carries the record's value
/// register; tombstones keep probe chains intact across deletes and
/// are swept (and their slots reclaimed) by the next table swap.
#[derive(Clone)]
enum Slot {
    Empty,
    Tombstone,
    Full(u64, TVar<Value>),
}

/// A shard's slot table. Cloning shares the slot array (two words), so
/// the `TVar<Table>` register swap that grows a shard stays inside the
/// STM's inline write-payload budget.
#[derive(Clone)]
struct Table {
    slots: Arc<[TVar<Slot>]>,
}

// Slot swaps and table swaps are the store's hottest buffered writes;
// both must take the descriptor's allocation-free inline path.
const _: () = assert!(polytm::write_payload_fits_inline::<Slot>());
const _: () = assert!(polytm::write_payload_fits_inline::<Table>());

struct Shard {
    table: TVar<Table>,
}

/// `start(p)` parameters per operation kind. The defaults encode the
/// soundness analysis in the module docs; the classed constructor tags
/// each kind with its own advisor class.
#[derive(Debug, Clone, Copy)]
pub struct KvParams {
    /// Point lookups (`get`/`contains`).
    pub read: TxParams,
    /// Slot-writing operations (`put`/`delete`/batched ingest).
    pub update: TxParams,
    /// Read-modify-writes (`cas`/`modify`).
    pub rmw: TxParams,
    /// Range/prefix scans and `len`.
    pub scan: TxParams,
    /// Multi-key [`KvStore::txn`] blocks.
    pub txn: TxParams,
}

/// Distinct advisor classes a classed store occupies (read, update,
/// rmw, scan, txn).
pub const KV_CLASSES: u16 = 5;

impl KvParams {
    /// The fixed per-operation semantics (no advisor classes).
    pub fn fixed() -> Self {
        Self {
            read: TxParams::new(Semantics::elastic()),
            update: TxParams::new(Semantics::Opaque),
            rmw: TxParams::new(Semantics::Opaque),
            scan: TxParams::new(Semantics::Snapshot),
            txn: TxParams::new(Semantics::Opaque),
        }
    }

    /// As [`KvParams::fixed`], with each operation kind tagged as its
    /// own transaction class (`base`, `base + 1`, … `base + 4`) for an
    /// advisor installed on the store's STM. Reads may be reclassified
    /// toward snapshot by feedback; writers request opaque, which a
    /// plan may escalate but — by the core's plan guardrails — never
    /// weaken below the probe-validating discipline they need.
    pub fn classed(base: u16) -> Self {
        let fixed = Self::fixed();
        Self {
            read: fixed.read.with_class(ClassId(base)),
            update: fixed.update.with_class(ClassId(base + 1)),
            rmw: fixed.rmw.with_class(ClassId(base + 2)),
            scan: fixed.scan.with_class(ClassId(base + 3)),
            txn: fixed.txn.with_class(ClassId(base + 4)),
        }
    }
}

/// Construction knobs for a [`KvStore`].
#[derive(Debug, Clone, Copy)]
pub struct KvConfig {
    /// Shard count (power of two, at most 128).
    pub shards: usize,
    /// Initial slots per shard (power of two, at least 8); shards grow
    /// by doubling under probe pressure.
    pub initial_slots: usize,
    /// Per-operation `start(p)` parameters.
    pub params: KvParams,
}

impl Default for KvConfig {
    fn default() -> Self {
        Self { shards: 16, initial_slots: 64, params: KvParams::fixed() }
    }
}

/// Outcome of one raw slot-writing probe.
struct PutRaw {
    prev: Option<Value>,
    /// The probe ran long: ask for a table swap after commit.
    grow: bool,
    /// Length of the table the probe ran against — the maintenance
    /// request's witness: a post-commit resize that finds the table
    /// already swapped to a different length knows the pressure event
    /// was handled and stands down.
    table_len: usize,
}

/// Post-commit maintenance requests gathered during a transaction:
/// `(shard, observed table length)` pairs, one per shard (the first
/// observation wins — any later swap changes the length and thereby
/// invalidates the request).
#[derive(Default)]
struct GrowSet(Vec<(usize, usize)>);

impl GrowSet {
    fn note(&mut self, shard: usize, observed_len: usize) {
        if !self.0.iter().any(|&(s, _)| s == shard) {
            self.0.push((shard, observed_len));
        }
    }
}

/// Sharded transactional key-value store. Cloning shares the store.
///
/// ```
/// use std::sync::Arc;
/// use polytm::Stm;
/// use polytm_kv::{KvStore, Value};
///
/// let store = KvStore::new(Arc::new(Stm::new()));
/// assert_eq!(store.put(1, Value::from_u64(10)), None);
/// assert_eq!(store.get(1), Some(Value::from_u64(10)));
/// // Multi-key atomic transaction spanning shards:
/// store.txn(|kv| {
///     let v = kv.get(1)?.and_then(|v| v.as_u64()).unwrap_or(0);
///     kv.put(2, Value::from_u64(v + 1))?;
///     kv.delete(1)?;
///     Ok(())
/// });
/// assert_eq!(store.get(1), None);
/// assert_eq!(store.get(2), Some(Value::from_u64(11)));
/// ```
#[derive(Clone)]
pub struct KvStore {
    stm: Arc<Stm>,
    shards: Arc<[CachePadded<Shard>]>,
    params: KvParams,
}

fn mix(key: u64) -> u64 {
    let mut h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 32;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^= h >> 32;
    h
}

impl KvStore {
    /// A store with the default configuration (16 shards × 64 initial
    /// slots, fixed per-operation semantics).
    pub fn new(stm: Arc<Stm>) -> Self {
        Self::with_config(stm, KvConfig::default())
    }

    /// A store with explicit configuration.
    ///
    /// # Panics
    /// Panics on a non-power-of-two or oversized shard count, an
    /// invalid initial table size, or writer params whose semantics
    /// cannot validate a whole probe chain (read-only, or elastic —
    /// a cut probe read admits duplicate inserts; writers must request
    /// [`Semantics::Opaque`] or [`Semantics::Irrevocable`]).
    pub fn with_config(stm: Arc<Stm>, config: KvConfig) -> Self {
        assert!(
            config.shards.is_power_of_two() && config.shards <= 128,
            "shards must be a power of two in 1..=128, got {}",
            config.shards
        );
        assert!(
            config.initial_slots.is_power_of_two() && config.initial_slots >= 8,
            "initial_slots must be a power of two >= 8, got {}",
            config.initial_slots
        );
        for (label, params) in [
            ("update", config.params.update),
            ("rmw", config.params.rmw),
            ("txn", config.params.txn),
        ] {
            assert!(
                matches!(params.semantics, Semantics::Opaque | Semantics::Irrevocable),
                "{label} params must request opaque or irrevocable semantics \
                 (got {:?}): slot writes are only sound when the whole probe \
                 chain is validated",
                params.semantics
            );
        }
        let shards: Arc<[CachePadded<Shard>]> = (0..config.shards)
            .map(|_| {
                CachePadded::new(Shard {
                    table: stm.new_tvar(fresh_table(&stm, config.initial_slots)),
                })
            })
            .collect();
        Self { stm, shards, params: config.params }
    }

    /// The STM this store lives in.
    pub fn stm(&self) -> &Arc<Stm> {
        &self.stm
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total slot capacity across shards (snapshot read; a diagnostic).
    pub fn capacity(&self) -> usize {
        self.stm.run(self.params.scan, |tx| {
            let mut total = 0;
            for shard in self.shards.iter() {
                total += shard.table.read(tx)?.slots.len();
            }
            Ok(total)
        })
    }

    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        (mix(key) as usize) & (self.shards.len() - 1)
    }

    #[inline]
    fn slot_start(key: u64) -> usize {
        (mix(key) >> 16) as usize
    }

    // ------------------------------------------------------------------
    // Transaction-composable operations
    // ------------------------------------------------------------------

    /// Composable point lookup.
    pub fn get_in(&self, tx: &mut Transaction<'_>, key: u64) -> TxResult<Option<Value>> {
        let table = self.shards[self.shard_of(key)].table.read(tx)?;
        let mask = table.slots.len() - 1;
        let mut i = Self::slot_start(key) & mask;
        for _ in 0..table.slots.len() {
            match table.slots[i].read(tx)? {
                Slot::Empty => return Ok(None),
                Slot::Tombstone => {}
                Slot::Full(k, var) if k == key => return Ok(Some(var.read(tx)?)),
                Slot::Full(..) => {}
            }
            i = (i + 1) & mask;
        }
        Ok(None)
    }

    /// Composable membership test.
    pub fn contains_in(&self, tx: &mut Transaction<'_>, key: u64) -> TxResult<bool> {
        Ok(self.get_in(tx, key)?.is_some())
    }

    /// Raw slot-writing upsert. Never grows the table itself (a resize
    /// must be its own transaction); reports probe pressure instead.
    fn put_raw(&self, tx: &mut Transaction<'_>, key: u64, value: Value) -> TxResult<PutRaw> {
        let table = self.shards[self.shard_of(key)].table.read(tx)?;
        let mask = table.slots.len() - 1;
        let mut i = Self::slot_start(key) & mask;
        let mut first_tomb: Option<usize> = None;
        for probed in 0..table.slots.len() {
            match table.slots[i].read(tx)? {
                Slot::Empty => {
                    // Reuse the earliest tombstone on the chain, else
                    // claim this empty slot.
                    let target = first_tomb.unwrap_or(i);
                    table.slots[target].write(tx, Slot::Full(key, self.stm.new_tvar(value)))?;
                    return Ok(PutRaw {
                        prev: None,
                        grow: probed + 1 >= MAX_PROBE,
                        table_len: table.slots.len(),
                    });
                }
                Slot::Tombstone => {
                    if first_tomb.is_none() {
                        first_tomb = Some(i);
                    }
                }
                Slot::Full(k, var) if k == key => {
                    let prev = var.replace(tx, value)?;
                    return Ok(PutRaw {
                        prev: Some(prev),
                        grow: probed + 1 >= MAX_PROBE,
                        table_len: table.slots.len(),
                    });
                }
                Slot::Full(..) => {}
            }
            i = (i + 1) & mask;
        }
        // The probe wrapped: no empty slot left. A tombstone can still
        // absorb the insert (and the shard then wants a post-commit
        // sweep); otherwise the table is genuinely full — grow it
        // *inside this transaction* (sound: the swap is just more reads
        // and writes in the same atomic step; the probe above already
        // read every slot, so the rebuild re-reads only read-set hits)
        // and place the key in the doubled table. The in-transaction
        // grow already relieved the pressure, so it must not *also*
        // request a post-commit resize (that would double the fresh,
        // tombstone-free table a second time).
        if let Some(target) = first_tomb {
            table.slots[target].write(tx, Slot::Full(key, self.stm.new_tvar(value)))?;
            Ok(PutRaw { prev: None, grow: true, table_len: table.slots.len() })
        } else {
            self.grow_in_tx(tx, self.shard_of(key), &table, key, value)?;
            Ok(PutRaw { prev: None, grow: false, table_len: table.slots.len() })
        }
    }

    /// Double a full shard table within the caller's transaction and
    /// place `key` in the rebuilt table. Only reached when every slot
    /// is `Full` (tombstones would have absorbed the insert), so `live`
    /// is the whole slot array.
    fn grow_in_tx(
        &self,
        tx: &mut Transaction<'_>,
        si: usize,
        table: &Table,
        key: u64,
        value: Value,
    ) -> TxResult<()> {
        let mut live = Vec::with_capacity(table.slots.len() + 1);
        for slot in table.slots.iter() {
            if let Slot::Full(k, var) = slot.read(tx)? {
                live.push((k, var));
            }
        }
        live.push((key, self.stm.new_tvar(value)));
        let fresh = self.build_table(live, table.slots.len() * 2);
        self.shards[si].table.write(tx, fresh)
    }

    /// Build a fresh table of `new_len` slots (power of two) holding
    /// `live`, placed by the store's probe policy — the single
    /// placement routine behind both the in-transaction grow path and
    /// the post-commit maintenance resize.
    fn build_table(&self, live: Vec<(u64, TVar<Value>)>, new_len: usize) -> Table {
        let mask = new_len - 1;
        let mut slots: Vec<Slot> = vec![Slot::Empty; new_len];
        for (k, var) in live {
            let mut i = Self::slot_start(k) & mask;
            while !matches!(slots[i], Slot::Empty) {
                i = (i + 1) & mask;
            }
            slots[i] = Slot::Full(k, var);
        }
        Table { slots: slots.into_iter().map(|s| self.stm.new_tvar(s)).collect() }
    }

    /// Composable upsert; returns the previous value. A completely full
    /// shard table grows inside the enclosing transaction; long-probe
    /// growth maintenance otherwise runs after the enclosing top-level
    /// operation commits (see [`KvStore::txn`]).
    pub fn put_in(
        &self,
        tx: &mut Transaction<'_>,
        key: u64,
        value: Value,
    ) -> TxResult<Option<Value>> {
        Ok(self.put_raw(tx, key, value)?.prev)
    }

    /// Composable delete; returns the removed value.
    pub fn delete_in(&self, tx: &mut Transaction<'_>, key: u64) -> TxResult<Option<Value>> {
        let table = self.shards[self.shard_of(key)].table.read(tx)?;
        let mask = table.slots.len() - 1;
        let mut i = Self::slot_start(key) & mask;
        for _ in 0..table.slots.len() {
            match table.slots[i].read(tx)? {
                Slot::Empty => return Ok(None),
                Slot::Tombstone => {}
                Slot::Full(k, var) if k == key => {
                    let prev = var.read(tx)?;
                    table.slots[i].write(tx, Slot::Tombstone)?;
                    return Ok(Some(prev));
                }
                Slot::Full(..) => {}
            }
            i = (i + 1) & mask;
        }
        Ok(None)
    }

    /// Composable count over the *inclusive* span `[lo, hi_incl]` —
    /// the internal span form, so `u64::MAX` keys are countable.
    fn count_span_in(&self, tx: &mut Transaction<'_>, lo: u64, hi_incl: u64) -> TxResult<usize> {
        let mut n = 0;
        for shard in self.shards.iter() {
            let table = shard.table.read(tx)?;
            for slot in table.slots.iter() {
                if let Slot::Full(k, _) = slot.read(tx)? {
                    if lo <= k && k <= hi_incl {
                        n += 1;
                    }
                }
            }
        }
        Ok(n)
    }

    /// Composable scan over the *inclusive* span `[lo, hi_incl]`,
    /// sorted by key (see [`KvStore::count_span_in`]).
    fn collect_span_in(
        &self,
        tx: &mut Transaction<'_>,
        lo: u64,
        hi_incl: u64,
    ) -> TxResult<Vec<(u64, Value)>> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let table = shard.table.read(tx)?;
            for slot in table.slots.iter() {
                if let Slot::Full(k, var) = slot.read(tx)? {
                    if lo <= k && k <= hi_incl {
                        out.push((k, var.read(tx)?));
                    }
                }
            }
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        Ok(out)
    }

    /// Composable range count over `[lo, hi)`.
    pub fn range_count_in(&self, tx: &mut Transaction<'_>, lo: u64, hi: u64) -> TxResult<usize> {
        if lo >= hi {
            return Ok(0);
        }
        self.count_span_in(tx, lo, hi - 1)
    }

    /// Composable range scan over `[lo, hi)`, sorted by key.
    pub fn scan_range_in(
        &self,
        tx: &mut Transaction<'_>,
        lo: u64,
        hi: u64,
    ) -> TxResult<Vec<(u64, Value)>> {
        if lo >= hi {
            return Ok(Vec::new());
        }
        self.collect_span_in(tx, lo, hi - 1)
    }

    // ------------------------------------------------------------------
    // Top-level operations
    // ------------------------------------------------------------------

    /// Point lookup (one elastic transaction by default).
    pub fn get(&self, key: u64) -> Option<Value> {
        self.stm.run(self.params.read, |tx| self.get_in(tx, key))
    }

    /// Membership test.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert-or-overwrite; returns the previous value. Grows the
    /// shard's table (its own transaction, after this one commits) when
    /// the probe ran long.
    pub fn put(&self, key: u64, value: Value) -> Option<Value> {
        let raw = self.stm.run(self.params.update, |tx| self.put_raw(tx, key, value.clone()));
        if raw.grow {
            self.resize_shard(self.shard_of(key), raw.table_len);
        }
        raw.prev
    }

    /// Delete; returns the removed value.
    pub fn delete(&self, key: u64) -> Option<Value> {
        self.stm.run(self.params.update, |tx| self.delete_in(tx, key))
    }

    /// Atomic compare-and-set: when the current value at `key` equals
    /// `expected` (`None` = key absent), install `new` and return
    /// `true`; otherwise change nothing and return `false`. One opaque
    /// read-modify-write transaction.
    pub fn cas(&self, key: u64, expected: Option<&Value>, new: Value) -> bool {
        let (swapped, grow) = self.stm.run(self.params.rmw, |tx| {
            let cur = self.get_in(tx, key)?;
            if cur.as_ref() != expected {
                return Ok((false, None));
            }
            let raw = self.put_raw(tx, key, new.clone())?;
            Ok((true, raw.grow.then_some(raw.table_len)))
        });
        if let Some(observed_len) = grow {
            self.resize_shard(self.shard_of(key), observed_len);
        }
        swapped
    }

    /// Atomic read-modify-write: replace the record at `key` with
    /// `f(current)` (insert when absent); returns the previous value.
    pub fn modify(&self, key: u64, f: impl Fn(Option<&Value>) -> Value) -> Option<Value> {
        let raw = self.stm.run(self.params.rmw, |tx| {
            let cur = self.get_in(tx, key)?;
            let next = f(cur.as_ref());
            self.put_raw(tx, key, next)
        });
        if raw.grow {
            self.resize_shard(self.shard_of(key), raw.table_len);
        }
        raw.prev
    }

    /// Batched multi-put: every entry installed in **one** transaction
    /// (all-or-nothing, whatever shards the keys span). Entries are
    /// applied in key order for a deterministic probe pattern; commit
    /// acquires the touched slot locks in global address order like any
    /// other transaction. The write-heavy-ingest fast path: one commit
    /// (one clock advance, one validation) amortized over the batch.
    ///
    /// **Duplicate keys are last-write-wins**: when `entries` carries a
    /// key more than once, the store ends up with the value of the
    /// *latest* occurrence in input order, exactly as if the entries
    /// had been `put` one by one. (The key-ordered application uses a
    /// stable sort, so equal keys keep their input order and the last
    /// occurrence's upsert lands last.)
    pub fn multi_put(&self, entries: &[(u64, Value)]) {
        let mut sorted: Vec<(u64, Value)> = entries.to_vec();
        // Stable by key: duplicate keys keep their input order, so the
        // batch's last entry for a key deterministically wins (each put
        // is an upsert).
        sorted.sort_by_key(|&(k, _)| k);
        let requests = self.stm.run(self.params.update, |tx| {
            let mut requests = GrowSet::default();
            for (key, value) in &sorted {
                let raw = self.put_raw(tx, *key, value.clone())?;
                if raw.grow {
                    requests.note(self.shard_of(*key), raw.table_len);
                }
            }
            Ok(requests)
        });
        self.apply_growth(requests);
    }

    /// Run a multi-key atomic transaction against the store. The
    /// closure may touch any number of keys on any shards; it re-runs
    /// on conflict like any STM transaction, and its effects commit
    /// atomically. Shards whose probes ran long during the committed
    /// attempt are grown afterwards.
    pub fn txn<T>(&self, mut f: impl FnMut(&mut KvTxn<'_, '_>) -> TxResult<T>) -> T {
        let (value, requests) = self.stm.run(self.params.txn, |tx| {
            let mut view = KvTxn { store: self, tx, grow: GrowSet::default() };
            let value = f(&mut view)?;
            let requests = std::mem::take(&mut view.grow);
            Ok((value, requests))
        });
        self.apply_growth(requests);
        value
    }

    /// [`KvStore::txn`] plus the committed attempt's
    /// [`CommitInfo`] — the entry point the durability layer wraps: the
    /// closure stages redo bytes alongside its writes (via
    /// [`KvTxn::tx`] and [`Transaction::stage_redo`]) and the returned
    /// sequence number is what the write-ahead log's `wait_durable`
    /// takes. Growth maintenance runs after the commit, exactly as in
    /// [`KvStore::txn`] (maintenance transactions stage no redo — a
    /// table swap moves records by handle and changes no value, so
    /// recovery rebuilds tables from scratch instead of replaying
    /// them).
    pub fn txn_logged<T>(
        &self,
        mut f: impl FnMut(&mut KvTxn<'_, '_>) -> TxResult<T>,
    ) -> (T, CommitInfo) {
        let ((value, requests), info) = self.stm.run_logged(self.params.txn, |tx| {
            let mut view = KvTxn { store: self, tx, grow: GrowSet::default() };
            let value = f(&mut view)?;
            let requests = std::mem::take(&mut view.grow);
            Ok((value, requests))
        });
        self.apply_growth(requests);
        (value, info)
    }

    /// Records in `[lo, hi)` under snapshot semantics, sorted by key:
    /// one consistent cut across every shard, never aborting on
    /// read-write conflicts.
    pub fn scan_range(&self, lo: u64, hi: u64) -> Vec<(u64, Value)> {
        self.stm.run(self.params.scan, |tx| self.scan_range_in(tx, lo, hi))
    }

    /// Number of records in `[lo, hi)` (snapshot semantics).
    pub fn range_count(&self, lo: u64, hi: u64) -> usize {
        self.stm.run(self.params.scan, |tx| self.range_count_in(tx, lo, hi))
    }

    /// Records whose key has `prefix` in its bits above the low
    /// `low_bits` — i.e. keys `k` with `k >> low_bits == prefix` —
    /// sorted by key. The prefix-scan shape for hierarchic keys
    /// (tenant/bucket/object packed into a `u64`). The topmost prefix
    /// block includes `u64::MAX` itself.
    ///
    /// # Panics
    /// Panics when `low_bits >= 64` or the prefix does not fit above
    /// `low_bits`.
    pub fn scan_prefix(&self, prefix: u64, low_bits: u32) -> Vec<(u64, Value)> {
        assert!(low_bits < 64, "low_bits must leave room for a prefix");
        assert!(prefix <= (u64::MAX >> low_bits), "prefix does not fit above {low_bits} low bits");
        let lo = prefix << low_bits;
        let hi_incl = lo + ((1u64 << low_bits) - 1);
        self.stm.run(self.params.scan, |tx| self.collect_span_in(tx, lo, hi_incl))
    }

    /// Number of live records (snapshot semantics; counts the whole key
    /// space, `u64::MAX` included).
    pub fn len(&self) -> usize {
        self.stm.run(self.params.scan, |tx| self.count_span_in(tx, 0, u64::MAX))
    }

    /// True when no records are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ------------------------------------------------------------------
    // Growth
    // ------------------------------------------------------------------

    fn apply_growth(&self, requests: GrowSet) {
        for (si, observed_len) in requests.0 {
            self.resize_shard(si, observed_len);
        }
    }

    /// Swap shard `si`'s table for a fresh one in one monomorphic
    /// transaction. `observed_len` is the table length the requesting
    /// operation probed against: several operations can request
    /// maintenance for the same pressure event, the requests serialize
    /// here, and any request that finds the table already swapped to a
    /// different length stands down — the event was handled (this is
    /// what keeps stacked requests from doubling a shard repeatedly).
    /// A live request sweeps tombstones at the same size when they
    /// dominate (>= 1/8 of slots with occupancy < 25%) and doubles
    /// otherwise — a long probe chain at any occupancy is only
    /// dispersed by rehashing into a bigger table. (A same-size sweep
    /// leaves the length unchanged, so one sibling request may still
    /// run and double; growth per event is bounded by that one
    /// doubling.) Record value registers move by handle, so concurrent
    /// value overwrites commute with the swap; slot-writing operations
    /// conflict with it through the table register and validate/retry
    /// as usual.
    fn resize_shard(&self, si: usize, observed_len: usize) {
        self.stm.run(TxParams::new(Semantics::Opaque), |tx| {
            let table = self.shards[si].table.read(tx)?;
            let len = table.slots.len();
            if len != observed_len {
                return Ok(()); // already swapped: the pressure event was handled
            }
            let mut live: Vec<(u64, TVar<Value>)> = Vec::new();
            let mut tombs = 0usize;
            for slot in table.slots.iter() {
                match slot.read(tx)? {
                    Slot::Empty => {}
                    Slot::Tombstone => tombs += 1,
                    Slot::Full(k, var) => live.push((k, var)),
                }
            }
            let new_len = if tombs >= len / 8 && live.len() * 4 < len { len } else { len * 2 };
            let fresh = self.build_table(live, new_len);
            self.shards[si].table.write(tx, fresh)?;
            Ok(())
        })
    }
}

fn fresh_table(stm: &Stm, slots: usize) -> Table {
    Table { slots: (0..slots).map(|_| stm.new_tvar(Slot::Empty)).collect() }
}

/// The store view handed to a [`KvStore::txn`] closure: the same
/// composable operations, plus growth-request bookkeeping so long
/// probes inside the transaction still trigger maintenance after it
/// commits.
pub struct KvTxn<'s, 'tx> {
    store: &'s KvStore,
    tx: &'s mut Transaction<'tx>,
    grow: GrowSet,
}

impl<'tx> KvTxn<'_, 'tx> {
    /// Point lookup.
    pub fn get(&mut self, key: u64) -> TxResult<Option<Value>> {
        self.store.get_in(self.tx, key)
    }

    /// Membership test.
    pub fn contains(&mut self, key: u64) -> TxResult<bool> {
        self.store.contains_in(self.tx, key)
    }

    /// Insert-or-overwrite; returns the previous value.
    pub fn put(&mut self, key: u64, value: Value) -> TxResult<Option<Value>> {
        let raw = self.store.put_raw(self.tx, key, value)?;
        if raw.grow {
            self.grow.note(self.store.shard_of(key), raw.table_len);
        }
        Ok(raw.prev)
    }

    /// Delete; returns the removed value.
    pub fn delete(&mut self, key: u64) -> TxResult<Option<Value>> {
        self.store.delete_in(self.tx, key)
    }

    /// Number of records in `[lo, hi)` as seen by this transaction.
    pub fn range_count(&mut self, lo: u64, hi: u64) -> TxResult<usize> {
        self.store.range_count_in(self.tx, lo, hi)
    }

    /// The underlying transaction, for composing the store with other
    /// transactional structures living on the same STM inside one
    /// atomic block (e.g. maintaining a `TxMap` secondary index next to
    /// the store's records).
    pub fn tx(&mut self) -> &mut Transaction<'tx> {
        self.tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn small_store() -> KvStore {
        KvStore::with_config(
            Arc::new(Stm::new()),
            KvConfig { shards: 4, initial_slots: 8, params: KvParams::fixed() },
        )
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let store = small_store();
        assert_eq!(store.put(1, Value::from_u64(10)), None);
        assert_eq!(store.put(1, Value::from_u64(11)), Some(Value::from_u64(10)));
        assert_eq!(store.get(1), Some(Value::from_u64(11)));
        assert_eq!(store.get(2), None);
        assert!(store.contains(1));
        assert_eq!(store.delete(1), Some(Value::from_u64(11)));
        assert_eq!(store.delete(1), None);
        assert!(store.is_empty());
    }

    #[test]
    fn grows_under_load_and_keeps_every_record() {
        let store = small_store(); // 4 shards x 8 slots = 32 to start
        for k in 0..500u64 {
            assert_eq!(store.put(k, Value::from_u64(k * 2)), None, "key {k}");
        }
        assert!(store.capacity() >= 500, "tables must have grown: {}", store.capacity());
        // Growth must be proportionate: stacked maintenance requests
        // for one pressure event stand down instead of doubling again.
        assert!(
            store.capacity() <= 500 * 8,
            "growth amplification: capacity {} for 500 records",
            store.capacity()
        );
        for k in 0..500u64 {
            assert_eq!(store.get(k), Some(Value::from_u64(k * 2)), "key {k}");
        }
        assert_eq!(store.len(), 500);
    }

    #[test]
    fn deletes_tombstone_and_reinserts_reuse_slots() {
        let store = small_store();
        for k in 0..64u64 {
            store.put(k, Value::from_u64(k));
        }
        for k in (0..64u64).step_by(2) {
            assert!(store.delete(k).is_some());
        }
        assert_eq!(store.len(), 32);
        // Reinsert over the tombstones, plus fresh keys.
        for k in (0..64u64).step_by(2) {
            assert_eq!(store.put(k, Value::from_u64(k + 1000)), None);
        }
        for k in 64..96u64 {
            store.put(k, Value::from_u64(k));
        }
        for k in 0..96u64 {
            assert!(store.contains(k), "key {k}");
        }
        assert_eq!(store.len(), 96);
    }

    #[test]
    fn cas_compares_by_content() {
        let store = small_store();
        // Absent-key CAS.
        assert!(!store.cas(5, Some(&Value::from_u64(1)), Value::from_u64(2)));
        assert!(store.cas(5, None, Value::from_u64(1)));
        assert_eq!(store.get(5), Some(Value::from_u64(1)));
        // Present-key CAS.
        assert!(!store.cas(5, None, Value::from_u64(9)));
        assert!(!store.cas(5, Some(&Value::from_u64(2)), Value::from_u64(9)));
        assert!(store.cas(5, Some(&Value::from_u64(1)), Value::from_u64(9)));
        assert_eq!(store.get(5), Some(Value::from_u64(9)));
    }

    #[test]
    fn modify_is_an_upserting_rmw() {
        let store = small_store();
        let bump =
            |cur: Option<&Value>| Value::from_u64(cur.and_then(Value::as_u64).unwrap_or(0) + 1);
        assert_eq!(store.modify(3, bump), None);
        assert_eq!(store.modify(3, bump), Some(Value::from_u64(1)));
        assert_eq!(store.get(3), Some(Value::from_u64(2)));
    }

    #[test]
    fn multi_put_installs_a_batch_atomically() {
        let store = small_store();
        let batch: Vec<(u64, Value)> = (0..200u64).map(|k| (k * 7, Value::from_u64(k))).collect();
        store.multi_put(&batch);
        for (k, v) in &batch {
            assert_eq!(store.get(*k).as_ref(), Some(v), "key {k}");
        }
        assert_eq!(store.len(), 200);
    }

    #[test]
    fn scans_agree_with_a_model_and_sort_by_key() {
        let store = small_store();
        let mut model = BTreeMap::new();
        let mut seed = 7u64;
        for _ in 0..400 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (seed >> 33) % 256;
            let v = Value::from_u64(seed);
            match seed % 3 {
                0 => {
                    assert_eq!(store.put(k, v.clone()), model.insert(k, v));
                }
                1 => {
                    assert_eq!(store.delete(k), model.remove(&k));
                }
                _ => {
                    assert_eq!(store.get(k), model.get(&k).cloned());
                }
            }
        }
        let got = store.scan_range(50, 200);
        let want: Vec<(u64, Value)> = model.range(50..200).map(|(k, v)| (*k, v.clone())).collect();
        assert_eq!(got, want);
        assert_eq!(store.range_count(0, u64::MAX), model.len());
    }

    #[test]
    fn prefix_scan_is_a_range_scan_over_the_prefix_block() {
        let store = small_store();
        // Keys packed as (bucket << 8) | object.
        for bucket in 0..4u64 {
            for object in 0..10u64 {
                store.put((bucket << 8) | object, Value::from_u64(bucket * 100 + object));
            }
        }
        let got = store.scan_prefix(2, 8);
        assert_eq!(got.len(), 10);
        for (i, (k, v)) in got.iter().enumerate() {
            assert_eq!(*k, (2 << 8) | i as u64);
            assert_eq!(v.as_u64(), Some(200 + i as u64));
        }
        assert!(store.scan_prefix(9, 8).is_empty());
    }

    #[test]
    fn extreme_keys_are_first_class() {
        let store = small_store();
        store.put(u64::MAX, Value::from_u64(1));
        store.put(0, Value::from_u64(2));
        assert_eq!(store.len(), 2, "len must count the whole key space, u64::MAX included");
        assert!(store.contains(u64::MAX));
        // The topmost prefix block includes u64::MAX itself.
        let top = store.scan_prefix(u64::MAX >> 8, 8);
        assert_eq!(top, vec![(u64::MAX, Value::from_u64(1))]);
        // Exclusive range bounds stay exclusive.
        assert_eq!(store.range_count(0, u64::MAX), 1);
        assert_eq!(store.range_count(3, 3), 0);
        assert!(store.scan_range(5, 2).is_empty());
    }

    #[test]
    fn multi_put_duplicate_keys_resolve_to_the_last_entry() {
        let store = small_store();
        store.multi_put(&[
            (5, Value::from_u64(1)),
            (9, Value::from_u64(7)),
            (5, Value::from_u64(2)),
            (5, Value::from_u64(3)),
        ]);
        assert_eq!(store.get(5), Some(Value::from_u64(3)), "batch order decides, stably");
        assert_eq!(store.get(9), Some(Value::from_u64(7)));
        assert_eq!(store.len(), 2);
    }

    /// Last-write-wins under pressure: seeded duplicate-heavy batches
    /// (few distinct keys, many occurrences each, interleaved with
    /// overwrites of pre-existing records) must land exactly where a
    /// one-by-one `put` replay of the batch lands.
    #[test]
    fn multi_put_duplicate_heavy_batches_match_sequential_put_replay() {
        let store = small_store();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for round in 0..20u64 {
            let batch: Vec<(u64, Value)> = (0..64)
                .map(|i| {
                    // 8 distinct keys per round → each key appears ~8
                    // times per batch, in pseudo-random order.
                    let key = next() % 8;
                    let val = round * 1000 + i;
                    (key, Value::from_u64(val))
                })
                .collect();
            for (k, v) in &batch {
                model.insert(*k, v.as_u64().unwrap());
            }
            store.multi_put(&batch);
            for (k, expect) in &model {
                assert_eq!(
                    store.get(*k).and_then(|v| v.as_u64()),
                    Some(*expect),
                    "round {round}: key {k} must hold its latest batch occurrence"
                );
            }
        }
        assert_eq!(store.len(), model.len());
    }

    #[test]
    fn cross_shard_txn_commits_atomically() {
        let store = small_store();
        store.put(0, Value::from_u64(100));
        store.put(1, Value::from_u64(0));
        // Transfer 30 from key 0 to key 1 — the keys hash to whatever
        // shards they hash to; the transaction spans them regardless.
        store.txn(|kv| {
            let a = kv.get(0)?.and_then(|v| v.as_u64()).unwrap();
            let b = kv.get(1)?.and_then(|v| v.as_u64()).unwrap();
            kv.put(0, Value::from_u64(a - 30))?;
            kv.put(1, Value::from_u64(b + 30))?;
            Ok(())
        });
        assert_eq!(store.get(0).unwrap().as_u64(), Some(70));
        assert_eq!(store.get(1).unwrap().as_u64(), Some(30));
    }

    #[test]
    fn large_values_share_bytes_and_stay_on_the_inline_write_path() {
        let store = small_store();
        store.stm().reset_stats();
        let blob = Value::from_bytes(&[0xAB; 4096]);
        assert!(blob.is_shared());
        for k in 0..50u64 {
            store.put(k, blob.clone());
        }
        assert_eq!(store.get(7), Some(blob.clone()));
        // The satellite invariant: 4 KiB record payloads must not push
        // TVar writes onto the boxed slow path — the Arc keeps every
        // buffered write inside the inline budget.
        assert_eq!(
            store.stm().stats().boxed_writes,
            0,
            "large kv values must never take the boxed write-payload path"
        );
    }

    #[test]
    fn composes_with_other_stores_on_the_same_stm() {
        let stm = Arc::new(Stm::new());
        let a = KvStore::new(Arc::clone(&stm));
        let b = KvStore::new(Arc::clone(&stm));
        a.put(1, Value::from_u64(5));
        stm.run(TxParams::default(), |tx| {
            if let Some(v) = a.delete_in(tx, 1)? {
                b.put_in(tx, 1, v)?;
            }
            Ok(())
        });
        assert_eq!(a.get(1), None);
        assert_eq!(b.get(1), Some(Value::from_u64(5)));
    }

    #[test]
    #[should_panic(expected = "opaque or irrevocable")]
    fn elastic_writer_params_are_rejected() {
        let mut params = KvParams::fixed();
        params.update = TxParams::new(Semantics::elastic());
        KvStore::with_config(
            Arc::new(Stm::new()),
            KvConfig { shards: 2, initial_slots: 8, params },
        );
    }

    #[test]
    fn classed_params_assign_distinct_classes() {
        let p = KvParams::classed(10);
        let classes = [p.read.class, p.update.class, p.rmw.class, p.scan.class, p.txn.class];
        for (i, c) in classes.iter().enumerate() {
            assert_eq!(*c, Some(ClassId(10 + i as u16)));
        }
        // Classed stores construct fine (the writers still request
        // opaque).
        let store = KvStore::with_config(
            Arc::new(Stm::new()),
            KvConfig { shards: 2, initial_slots: 8, params: p },
        );
        store.put(1, Value::from_u64(1));
        assert!(store.contains(1));
    }
}
