//! # polytm-kv — a sharded transactional key-value store
//!
//! Every workload the rest of this workspace measures is set-shaped
//! (membership on ordered/hash sets). Production serving systems run
//! *record stores*: point reads and writes, compare-and-set,
//! multi-record transactions, range and prefix scans — the YCSB
//! workload class. This crate builds that store on the polymorphic STM
//! and keeps the paper's thesis front and center: each operation kind
//! runs under the weakest semantics that is *sound for its shape* —
//! elastic probes for lookups, opaque probe-validated writes, snapshot
//! scans — and the classed constructor hands each kind to the adaptive
//! advisor as its own transaction class.
//!
//! * [`KvStore`] — N cache-padded shards, each an open-addressed slot
//!   table of `TVar`-backed records; `get`/`put`/`delete`/`cas`/
//!   [`KvStore::modify`], snapshot [`KvStore::scan_range`]/
//!   [`KvStore::scan_prefix`], batched [`KvStore::multi_put`] ingest,
//!   and atomic multi-key cross-shard [`KvStore::txn`] blocks.
//! * [`Value`] — the record payload: inline up to 14 bytes,
//!   `Arc`-shared beyond, so every transactional write of a value —
//!   whatever the record size — stays inside the STM's 3-word inline
//!   write-payload budget (no per-write boxing; see
//!   `StatsSnapshot::boxed_writes`).
//!
//! See `DESIGN.md` §7 for the sharding layout, the cross-shard commit
//! argument and the scan-consistency contract per backend.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod store;
pub mod value;

pub use store::{KvConfig, KvParams, KvStore, KvTxn, KV_CLASSES};
pub use value::{Value, INLINE_VALUE_BYTES};
