//! [`Value`]: the record payload type, engineered around the STM's
//! inline write-payload budget.
//!
//! Buffered transactional writes store payloads of up to
//! [`polytm::INLINE_WRITE_WORDS`] machine words (3 × 8 bytes) inline in
//! the pooled descriptor; anything larger is boxed **per write** — an
//! allocation plus an erased destructor on the commit hot path, counted
//! by `StatsSnapshot::boxed_writes`. A naive `Vec<u8>` value type (3
//! words, but an allocation per clone) or a fixed `[u8; 64]` record
//! (boxed on every write) would silently spend that cost on every
//! `put`. `Value` instead keeps payloads of up to
//! [`Value::INLINE_BYTES`] bytes inline in the handle and shares larger
//! ones behind one `Arc<[u8]>` — so *every* `Value`, whatever the
//! record size, is a ≤ 3-word handle whose transactional writes take
//! the allocation-free inline path (checked at compile time below, and
//! asserted against the live counter in the crate tests).

use std::fmt;
use std::sync::Arc;

/// Payloads up to this many bytes live inline in the [`Value`] handle;
/// longer ones are shared behind an `Arc<[u8]>`. The bound is what fits
/// next to the length byte and the enum tag inside the 3-word
/// ([`polytm::INLINE_WRITE_WORDS`]) inline write-payload budget.
pub const INLINE_VALUE_BYTES: usize = 14;

#[derive(Clone)]
enum Repr {
    /// Small payload, stored in the handle itself.
    Inline { len: u8, bytes: [u8; INLINE_VALUE_BYTES] },
    /// Large payload, shared: a transactional write moves one `Arc`
    /// (two words), not the bytes.
    Shared(Arc<[u8]>),
}

/// An immutable byte-string record value with a cheap, inline-budget
/// clone. See the module docs for the design rationale.
#[derive(Clone)]
pub struct Value(Repr);

// The whole point of the type: a buffered write of a Value — any
// Value — must use the descriptor's inline payload storage. A field
// added carelessly would flip every put onto the boxed slow path;
// these fail the build instead.
const _: () = assert!(size_of::<Value>() <= polytm::INLINE_WRITE_WORDS * 8);
const _: () = assert!(polytm::write_payload_fits_inline::<Value>());

impl Value {
    /// Byte budget of the inline representation (alias of
    /// [`INLINE_VALUE_BYTES`], as an associated constant).
    pub const INLINE_BYTES: usize = INLINE_VALUE_BYTES;

    /// A value from raw bytes: inline up to [`Value::INLINE_BYTES`],
    /// `Arc`-shared beyond.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        if bytes.len() <= INLINE_VALUE_BYTES {
            let mut inline = [0u8; INLINE_VALUE_BYTES];
            inline[..bytes.len()].copy_from_slice(bytes);
            Value(Repr::Inline { len: bytes.len() as u8, bytes: inline })
        } else {
            Value(Repr::Shared(Arc::from(bytes)))
        }
    }

    /// An 8-byte little-endian value (the counter/benchmark
    /// convenience; always inline).
    pub fn from_u64(v: u64) -> Self {
        Self::from_bytes(&v.to_le_bytes())
    }

    /// The payload bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, bytes } => &bytes[..usize::from(*len)],
            Repr::Shared(arc) => arc,
        }
    }

    /// The payload reinterpreted as a little-endian `u64`; `None`
    /// unless it is exactly 8 bytes.
    pub fn as_u64(&self) -> Option<u64> {
        <[u8; 8]>::try_from(self.as_bytes()).ok().map(u64::from_le_bytes)
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// True for the empty payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the payload is `Arc`-shared (larger than
    /// [`Value::INLINE_BYTES`]).
    pub fn is_shared(&self) -> bool {
        matches!(self.0, Repr::Shared(_))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Value {}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Value")
            .field("len", &self.len())
            .field("shared", &self.is_shared())
            .finish()
    }
}

impl From<&[u8]> for Value {
    fn from(bytes: &[u8]) -> Self {
        Self::from_bytes(bytes)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_shared_representations_split_at_the_budget() {
        let at = Value::from_bytes(&[7u8; INLINE_VALUE_BYTES]);
        assert!(!at.is_shared());
        assert_eq!(at.len(), INLINE_VALUE_BYTES);
        let over = Value::from_bytes(&[7u8; INLINE_VALUE_BYTES + 1]);
        assert!(over.is_shared());
        assert_eq!(over.len(), INLINE_VALUE_BYTES + 1);
        let big = Value::from_bytes(&[1u8; 4096]);
        assert!(big.is_shared());
        assert_eq!(big.as_bytes(), &[1u8; 4096][..]);
    }

    #[test]
    fn equality_is_by_content_across_representations() {
        assert_eq!(Value::from_bytes(b"abc"), Value::from_bytes(b"abc"));
        assert_ne!(Value::from_bytes(b"abc"), Value::from_bytes(b"abd"));
        assert_ne!(Value::from_bytes(b""), Value::from_bytes(b"a"));
        // A shared value equals an equal shared value byte-for-byte.
        let long = vec![9u8; 100];
        assert_eq!(Value::from_bytes(&long), Value::from_bytes(&long));
    }

    #[test]
    fn u64_roundtrip() {
        let v = Value::from_u64(0xDEAD_BEEF_0123_4567);
        assert!(!v.is_shared());
        assert_eq!(v.as_u64(), Some(0xDEAD_BEEF_0123_4567));
        assert_eq!(Value::from_bytes(b"short").as_u64(), None);
    }

    #[test]
    fn clones_of_shared_values_share_the_bytes() {
        let v = Value::from_bytes(&[3u8; 64]);
        let w = v.clone();
        let (Repr::Shared(a), Repr::Shared(b)) = (&v.0, &w.0) else {
            panic!("64-byte payloads must be shared")
        };
        assert!(Arc::ptr_eq(a, b), "clone must alias, not copy, the payload");
    }

    #[test]
    fn every_value_fits_the_inline_write_budget() {
        // Compile-time asserted above; restate against the runtime
        // predicate so the invariant shows up in test output too.
        assert!(polytm::write_payload_fits_inline::<Value>());
        assert!(size_of::<Value>() <= polytm::INLINE_WRITE_WORDS * 8);
    }
}
