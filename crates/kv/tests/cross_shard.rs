//! Cross-shard transaction tests: multi-key atomicity under concurrent
//! mutation — the property that makes the sharding a contention
//! structure rather than a consistency boundary.
//!
//! Iteration counts are env-gated like the core stress suites:
//! `POLYTM_STRESS_THREADS` (worker count) and `POLYTM_STRESS_SCALE`
//! (percentage of the written iteration counts).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use polytm::Stm;
use polytm_kv::{KvConfig, KvParams, KvStore, Value};

fn threads() -> usize {
    std::env::var("POLYTM_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
        .max(2)
}

fn scaled(n: u64) -> u64 {
    let pct = std::env::var("POLYTM_STRESS_SCALE")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(100)
        .max(1);
    (n * pct / 100).max(1)
}

fn store_with(shards: usize, slots: usize) -> KvStore {
    KvStore::with_config(
        Arc::new(Stm::new()),
        KvConfig { shards, initial_slots: slots, params: KvParams::fixed() },
    )
}

/// Accounts spread across every shard; concurrent transfers move money
/// between randomly chosen accounts while snapshot scanners keep
/// asserting conservation *mid-flight*. A torn cross-shard commit —
/// one write visible without the other — breaks the invariant
/// immediately.
#[test]
fn cross_shard_transfers_conserve_total_under_concurrency() {
    const ACCOUNTS: u64 = 64;
    const INITIAL: u64 = 1_000;
    let store = store_with(16, 16);
    for k in 0..ACCOUNTS {
        store.put(k, Value::from_u64(INITIAL));
    }
    let total = ACCOUNTS * INITIAL;
    let writers = threads();
    let per_thread = scaled(300);
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for t in 0..writers as u64 {
            let store = store.clone();
            s.spawn(move || {
                let mut seed = 0x1234_5678u64.wrapping_mul(t + 1);
                for _ in 0..per_thread {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (seed >> 33) % ACCOUNTS;
                    let to = (seed >> 13) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = seed % 50;
                    store.txn(|kv| {
                        let a = kv.get(from)?.and_then(|v| v.as_u64()).expect("account exists");
                        let b = kv.get(to)?.and_then(|v| v.as_u64()).expect("account exists");
                        if a >= amount {
                            kv.put(from, Value::from_u64(a - amount))?;
                            kv.put(to, Value::from_u64(b + amount))?;
                        }
                        Ok(())
                    });
                }
            });
        }
        // Concurrent snapshot scanner: the scan is one consistent cut,
        // so the balance total must hold at every observation.
        let scanner_store = store.clone();
        let stop = &stop;
        s.spawn(move || {
            let mut observations = 0u32;
            while !stop.load(Ordering::Relaxed) || observations == 0 {
                let sum: u64 = scanner_store
                    .scan_range(0, ACCOUNTS)
                    .into_iter()
                    .map(|(_, v)| v.as_u64().expect("balance record"))
                    .sum();
                assert_eq!(sum, total, "mid-flight snapshot saw a torn transfer");
                observations += 1;
            }
        });
        // Let the scanner overlap the writers for a while, then release
        // it; the writers keep the scope open until they finish, and
        // conservation is re-checked at quiescence below.
        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
    });

    let final_sum: u64 =
        store.scan_range(0, ACCOUNTS).into_iter().map(|(_, v)| v.as_u64().unwrap()).sum();
    assert_eq!(final_sum, total, "conservation must hold at quiescence");
    let stats = store.stm().stats();
    assert!(stats.commits > 0);
}

/// Concurrent put/delete churn against disjoint key ranges plus a
/// shared hot range, with concurrent growth: membership afterwards must
/// be exactly what each thread's deterministic schedule produced.
#[test]
fn concurrent_churn_with_growth_preserves_membership() {
    let store = store_with(8, 8); // tiny: forces many resizes under churn
    let workers = threads() as u64;
    let per_thread = scaled(400);
    std::thread::scope(|s| {
        for t in 0..workers {
            let store = store.clone();
            s.spawn(move || {
                let base = t * 1_000_000;
                for i in 0..per_thread {
                    let k = base + i;
                    store.put(k, Value::from_u64(i));
                    if i % 3 == 0 {
                        assert_eq!(store.delete(k), Some(Value::from_u64(i)), "key {k}");
                    }
                }
            });
        }
    });
    for t in 0..workers {
        let base = t * 1_000_000;
        for i in 0..per_thread {
            let k = base + i;
            if i % 3 == 0 {
                assert!(!store.contains(k), "deleted key {k} resurfaced");
            } else {
                assert_eq!(store.get(k), Some(Value::from_u64(i)), "key {k} lost");
            }
        }
    }
    let expected: u64 = workers * (per_thread - per_thread.div_ceil(3));
    assert_eq!(store.len() as u64, expected);
}

/// Batched ingest racing point mutators: each batch is one transaction,
/// so a concurrent snapshot scan sees each batch entirely or not at
/// all.
#[test]
fn multi_put_batches_are_atomic_against_scans() {
    let store = store_with(8, 16);
    const BATCH: u64 = 50;
    let batches = scaled(40);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let stop = &stop;
        let writer = store.clone();
        s.spawn(move || {
            for b in 0..batches {
                // Batch b fills keys [b*BATCH, (b+1)*BATCH) with value b.
                let entries: Vec<(u64, Value)> =
                    (0..BATCH).map(|i| (b * BATCH + i, Value::from_u64(b))).collect();
                writer.multi_put(&entries);
            }
            stop.store(true, Ordering::Relaxed);
        });
        let scanner = store.clone();
        s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let n = scanner.range_count(0, batches * BATCH);
                assert_eq!(
                    n as u64 % BATCH,
                    0,
                    "scan observed a partially applied batch ({n} records)"
                );
            }
        });
    });
    assert_eq!(store.len() as u64, batches * BATCH);
}
