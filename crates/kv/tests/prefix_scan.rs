//! Prefix scans cross-checked against [`polytm_structures::TxMap`]:
//! the ordered skip-list map maintained *in the same transactions* as
//! the KV store acts as an ordered-scan oracle. Because both
//! structures share one STM instance, a single snapshot transaction
//! reads both in one consistent cut — so the comparison is exact even
//! while writers are mid-flight.

use std::sync::Arc;

use polytm::{Semantics, Stm, TxParams};
use polytm_kv::{KvConfig, KvParams, KvStore, Value};
use polytm_structures::TxMap;

/// Pack (bucket, object) into the store's u64 key space: the bucket is
/// the prefix above 8 low bits.
fn key(bucket: u64, object: u64) -> u64 {
    (bucket << 8) | object
}

#[test]
fn prefix_scan_agrees_with_a_txmap_index_under_concurrent_mutation() {
    let stm = Arc::new(Stm::new());
    let store = KvStore::with_config(
        Arc::clone(&stm),
        KvConfig { shards: 8, initial_slots: 16, params: KvParams::fixed() },
    );
    // The ordered oracle: same keys, value = the record's u64 payload.
    let index: TxMap<u64> = TxMap::new(Arc::clone(&stm));

    let buckets = 4u64;
    let writers: Vec<_> = (0..buckets).collect();
    std::thread::scope(|s| {
        // One writer per bucket: inserts, overwrites and deletes applied
        // to store AND index in one atomic transaction each.
        for &bucket in &writers {
            let store = store.clone();
            let index = index.clone();
            s.spawn(move || {
                for round in 0..120u64 {
                    let object = round % 40;
                    let k = key(bucket, object);
                    let v = bucket * 10_000 + round;
                    store.txn(|kv| {
                        if round % 5 == 4 {
                            kv.delete(k)?;
                            index.remove_in(kv.tx(), k as i64)?;
                        } else {
                            kv.put(k, Value::from_u64(v))?;
                            index.insert_in(kv.tx(), k as i64, v)?;
                        }
                        Ok(())
                    });
                }
            });
        }
        // Concurrent checker: one snapshot cut over both structures per
        // observation; the prefix scan must equal the oracle exactly.
        let store = store.clone();
        let index = index.clone();
        let stm_reader = Arc::clone(&stm);
        s.spawn(move || {
            for _ in 0..60 {
                for bucket in 0..buckets {
                    let (scan, oracle) = stm_reader.run(TxParams::new(Semantics::Snapshot), |tx| {
                        let scan = store.scan_range_in(tx, key(bucket, 0), key(bucket + 1, 0))?;
                        let mut oracle = Vec::new();
                        for object in 0..40u64 {
                            let k = key(bucket, object);
                            if let Some(v) = index.get_in(tx, k as i64)? {
                                oracle.push((k, Value::from_u64(v)));
                            }
                        }
                        Ok((scan, oracle))
                    });
                    assert_eq!(scan, oracle, "bucket {bucket}: prefix scan diverged from oracle");
                }
            }
        });
    });

    // Quiescent check through the public prefix-scan API, against the
    // oracle's ordered export.
    for bucket in 0..buckets {
        let got = store.scan_prefix(bucket, 8);
        let want: Vec<(u64, Value)> = index
            .entries_snapshot()
            .into_iter()
            .filter(|&(k, _)| (k as u64) >> 8 == bucket)
            .map(|(k, v)| (k as u64, Value::from_u64(v)))
            .collect();
        assert_eq!(got, want, "bucket {bucket}");
        // Scans come back key-sorted — the ordered-map property the
        // oracle makes checkable.
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
