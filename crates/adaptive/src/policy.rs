//! Per-class policies: the (semantics, contention-manager, escalation)
//! triple the controller selects and the [`crate::Advisor`]'s
//! `plan` implementation serves, packed into one atomic word so the
//! per-attempt read is a single relaxed load.

use std::time::Duration;

use polytm::{Backoff, ConflictArbiter, Greedy, Semantics, Suicide};

/// Semantics the advisor may assign to a class. Irrevocable is absent
/// deliberately: escalation is a per-*attempt* decision (retry count
/// against [`Policy::escalate_after`]), never a steady-state class
/// policy — pinning a class irrevocable would serialize the whole STM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticsChoice {
    /// The paper's `def`.
    Opaque,
    /// The paper's `weak` (window 2).
    Elastic,
    /// Multi-versioned read-only. Only ever assigned to classes never
    /// observed writing (the hard safety rule; see `DESIGN.md`).
    Snapshot,
}

impl SemanticsChoice {
    /// The corresponding runtime semantics.
    pub fn to_semantics(self) -> Semantics {
        match self {
            SemanticsChoice::Opaque => Semantics::Opaque,
            SemanticsChoice::Elastic => Semantics::elastic(),
            SemanticsChoice::Snapshot => Semantics::Snapshot,
        }
    }

    fn code(self) -> u64 {
        match self {
            SemanticsChoice::Opaque => 0,
            SemanticsChoice::Elastic => 1,
            SemanticsChoice::Snapshot => 2,
        }
    }

    fn from_code(code: u64) -> Self {
        match code {
            0 => SemanticsChoice::Opaque,
            1 => SemanticsChoice::Elastic,
            2 => SemanticsChoice::Snapshot,
            other => unreachable!("invalid semantics code {other}"),
        }
    }
}

/// Contention-manager policy (decision rule *and* backoff curve).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmChoice {
    /// Abort on conflict, no backoff: lowest latency when conflicts are
    /// rare.
    Suicide,
    /// The default exponential backoff (2 µs base, 1 ms cap).
    Backoff,
    /// A steeper curve (8 µs base, 4 ms cap) for validation-dominated
    /// contention, where desynchronizing retries is what helps.
    BackoffAggressive,
    /// Timestamp-priority aging for lock-dominated contention, where
    /// who-waits-for-whom is what matters.
    Greedy,
}

impl CmChoice {
    /// The corresponding runtime arbiter.
    pub fn to_arbiter(self) -> ConflictArbiter {
        match self {
            CmChoice::Suicide => ConflictArbiter::Suicide(Suicide),
            CmChoice::Backoff => ConflictArbiter::Backoff(Backoff::default()),
            CmChoice::BackoffAggressive => ConflictArbiter::Backoff(Backoff {
                base: Duration::from_micros(8),
                cap: Duration::from_millis(4),
            }),
            CmChoice::Greedy => ConflictArbiter::Greedy(Greedy::default()),
        }
    }

    fn code(self) -> u64 {
        match self {
            CmChoice::Suicide => 0,
            CmChoice::Backoff => 1,
            CmChoice::BackoffAggressive => 2,
            CmChoice::Greedy => 3,
        }
    }

    fn from_code(code: u64) -> Self {
        match code {
            0 => CmChoice::Suicide,
            1 => CmChoice::Backoff,
            2 => CmChoice::BackoffAggressive,
            3 => CmChoice::Greedy,
            other => unreachable!("invalid cm code {other}"),
        }
    }
}

/// One class's selected policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Policy {
    /// Semantics assigned to the class.
    pub semantics: SemanticsChoice,
    /// Contention manager assigned to the class.
    pub cm: CmChoice,
    /// Retry count at which an attempt escalates to
    /// [`Semantics::Irrevocable`] (the per-attempt liveness valve; kept
    /// below the core's own `irrevocable_fallback_after` backstop for
    /// hot classes).
    pub escalate_after: u8,
}

/// Sentinel for "no policy selected yet" in the packed representation.
pub(crate) const POLICY_UNSET: u64 = u64::MAX;

impl Policy {
    /// The conservative starting point before any telemetry exists:
    /// elastic semantics, default backoff, late escalation.
    pub fn initial() -> Self {
        Policy { semantics: SemanticsChoice::Elastic, cm: CmChoice::Backoff, escalate_after: 48 }
    }

    /// Pack into the atomic policy word.
    pub(crate) fn encode(self) -> u64 {
        self.semantics.code() | (self.cm.code() << 4) | (u64::from(self.escalate_after) << 8)
    }

    /// Unpack; `None` for the unset sentinel.
    pub(crate) fn decode(word: u64) -> Option<Self> {
        if word == POLICY_UNSET {
            return None;
        }
        Some(Policy {
            semantics: SemanticsChoice::from_code(word & 0xF),
            cm: CmChoice::from_code((word >> 4) & 0xF),
            escalate_after: ((word >> 8) & 0xFF) as u8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrips() {
        for semantics in
            [SemanticsChoice::Opaque, SemanticsChoice::Elastic, SemanticsChoice::Snapshot]
        {
            for cm in [
                CmChoice::Suicide,
                CmChoice::Backoff,
                CmChoice::BackoffAggressive,
                CmChoice::Greedy,
            ] {
                for escalate_after in [0u8, 7, 48, 255] {
                    let p = Policy { semantics, cm, escalate_after };
                    assert_eq!(Policy::decode(p.encode()), Some(p));
                }
            }
        }
        assert_eq!(Policy::decode(POLICY_UNSET), None);
    }

    #[test]
    fn choices_map_to_runtime_types() {
        assert_eq!(SemanticsChoice::Elastic.to_semantics(), Semantics::elastic());
        assert_eq!(SemanticsChoice::Snapshot.to_semantics(), Semantics::Snapshot);
        assert_eq!(CmChoice::Greedy.to_arbiter().label(), "greedy");
        assert_eq!(CmChoice::Suicide.to_arbiter().label(), "suicide");
        assert_eq!(CmChoice::BackoffAggressive.to_arbiter().label(), "backoff");
    }
}
