//! # polytm-adaptive — the adaptive polymorphism runtime
//!
//! The paper argues that picking the right transaction semantics per
//! operation admits strictly more concurrency than any monomorphic
//! choice. The rest of this workspace proves that *statically*: every
//! fixed backend hard-codes one [`Semantics`]. This crate closes the
//! loop at runtime: an [`Advisor`] observes per-class telemetry through
//! the core's [`SemanticsSource`] hook and, on an epoch cadence,
//! selects both the semantics (opaque / elastic / snapshot, with
//! irrevocable escalation per attempt) and the contention-manager
//! policy for each class — with hysteresis, so phase boundaries do not
//! make it thrash.
//!
//! ## Architecture
//!
//! ```text
//!  Stm::run(params.with_class(c))          Advisor
//!  ┌──────────────────────────┐   plan()   ┌─────────────────────┐
//!  │ every attempt ───────────┼───────────▶│ policy table        │ one relaxed load
//!  │                          │◀───────────┤ [AtomicU64; 32]     │
//!  │ run commits ─────────────┼───────────▶│ class telemetry     │ sharded counters
//!  └──────────────────────────┘  observe() │   │ epoch cadence   │
//!                                          │   ▼                 │
//!                                          │ epoch controller    │ select + hysteresis
//!                                          └─────────────────────┘
//! ```
//!
//! ## The Snapshot safety rule
//!
//! [`Semantics::Snapshot`] rejects writes, so assigning it to a writing
//! class would be a liveness bug. Three independent layers prevent it:
//!
//! 1. the controller never *selects* Snapshot for a class whose sticky
//!    has-ever-written flag is set ([`controller::select`]);
//! 2. [`Advisor::plan`] re-checks the sticky flag at serve time, so a
//!    policy selected before the first write was observed is overridden
//!    the moment the flag appears;
//! 3. the core itself re-runs an injected-Snapshot attempt that hits a
//!    write under the caller's requested semantics (and reports the
//!    violation back, setting the flag).
//!
//! A misbehaving advisor can therefore cost throughput, never safety or
//! liveness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod controller;
pub mod metrics;
pub mod policy;
pub mod telemetry;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crossbeam_utils::CachePadded;
use polytm::trace::{self, TraceEvent};
use polytm::{AttemptPlan, ClassId, RunTelemetry, Semantics, SemanticsSource};

pub use controller::{select, AdvisorConfig};
pub use policy::{CmChoice, Policy, SemanticsChoice};
pub use telemetry::{ClassTable, ClassTotals, MAX_CLASSES};

use controller::HysteresisGate;
use policy::POLICY_UNSET;

/// Epoch-cadence state, touched only when an epoch closes.
struct ControlState {
    /// Last epoch's lifetime totals per class (for deltas).
    last: [ClassTotals; MAX_CLASSES],
    /// Per-class hysteresis gates.
    gates: [HysteresisGate; MAX_CLASSES],
}

/// The feedback-driven semantics/CM advisor. Install on an STM with
/// [`polytm::Stm::with_advisor`]; tag runs with
/// [`polytm::TxParams::with_class`].
///
/// ```
/// use std::sync::Arc;
/// use polytm::{ClassId, Semantics, Stm, StmConfig, TxParams};
/// use polytm_adaptive::Advisor;
///
/// let advisor = Arc::new(Advisor::default());
/// let stm = Stm::with_advisor(StmConfig::default(), Arc::clone(&advisor) as _);
/// let v = stm.new_tvar(0i64);
/// let lookups = TxParams::new(Semantics::elastic()).with_class(ClassId(0));
/// let n = stm.run(lookups, |tx| v.read(tx));
/// assert_eq!(n, 0);
/// ```
pub struct Advisor {
    config: AdvisorConfig,
    stats: ClassTable,
    /// Packed [`Policy`] per class ([`POLICY_UNSET`] until the first
    /// data-backed selection); the whole `plan` hot path is one relaxed
    /// load of this word.
    policies: [AtomicU64; MAX_CLASSES],
    /// Observed runs since creation; epochs close every
    /// `config.epoch_runs` observations.
    observations: CachePadded<AtomicU64>,
    /// Observation count at which the next epoch closes. A compare
    /// against this (plus a CAS for the one thread that crosses it)
    /// replaces a per-observe modulo — `epoch_runs` is a runtime knob,
    /// so `%` would be a hardware division on every commit.
    next_epoch: CachePadded<AtomicU64>,
    /// Closed epochs (diagnostics).
    epochs: CachePadded<AtomicU64>,
    control: Mutex<ControlState>,
}

impl Default for Advisor {
    fn default() -> Self {
        Self::new(AdvisorConfig::default())
    }
}

impl Advisor {
    /// New advisor with explicit tuning.
    pub fn new(config: AdvisorConfig) -> Self {
        assert!(config.epoch_runs > 0, "epoch_runs must be positive");
        assert!(config.hysteresis > 0, "hysteresis must be positive");
        assert!(
            config.min_epoch_runs > 0,
            "min_epoch_runs must be positive (0 would install data-free policies)"
        );
        Self {
            config,
            stats: ClassTable::default(),
            policies: std::array::from_fn(|_| AtomicU64::new(POLICY_UNSET)),
            observations: CachePadded::new(AtomicU64::new(0)),
            next_epoch: CachePadded::new(AtomicU64::new(config.epoch_runs)),
            epochs: CachePadded::new(AtomicU64::new(0)),
            control: Mutex::new(ControlState {
                last: [ClassTotals::default(); MAX_CLASSES],
                gates: [HysteresisGate::default(); MAX_CLASSES],
            }),
        }
    }

    /// The advisor's configuration.
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// The currently selected policy for `class`, or `None` while the
    /// class has no data-backed selection yet.
    pub fn policy(&self, class: ClassId) -> Option<Policy> {
        Policy::decode(self.policies[ClassTable::slot(class)].load(Ordering::Relaxed))
    }

    /// Number of closed epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Lifetime telemetry totals for `class`.
    pub fn totals(&self, class: ClassId) -> ClassTotals {
        self.stats.totals(ClassTable::slot(class))
    }

    /// Has `class` ever been observed writing?
    pub fn has_written(&self, class: ClassId) -> bool {
        self.stats.has_written(ClassTable::slot(class))
    }

    /// Close an epoch: compute per-class deltas, select candidates, and
    /// install the ones that clear hysteresis. Runs automatically every
    /// [`AdvisorConfig::epoch_runs`] observations; public so tests and
    /// tools can force a reselection point.
    pub fn close_epoch(&self) {
        let mut control = self.control.lock().expect("controller state poisoned");
        let mut flips = 0u32;
        for slot in 0..MAX_CLASSES {
            let now = self.stats.totals(slot);
            let delta = now.delta_since(&control.last[slot]);
            if delta.runs < self.config.min_epoch_runs {
                // Too thin to trust — and a silent epoch must not count
                // toward (or against) any pending challenger's streak.
                // `last` deliberately stays put so a low-rate class
                // *accumulates* across epochs and still classifies once
                // its cumulative delta clears the threshold.
                continue;
            }
            control.last[slot] = now;
            let old_word = self.policies[slot].load(Ordering::Relaxed);
            let current = Policy::decode(old_word);
            let wrote = self.stats.has_written(slot);
            let candidate =
                select(&self.config, wrote, &delta, current.unwrap_or_else(Policy::initial));
            if let Some(admitted) =
                control.gates[slot].admit(candidate, current, self.config.hysteresis)
            {
                let new_word = admitted.encode();
                self.policies[slot].store(new_word, Ordering::Relaxed);
                if new_word != old_word {
                    flips += 1;
                    trace::emit(|| {
                        TraceEvent::new(
                            trace::code::ADVISOR_FLIP,
                            trace::semantics_code(admitted.semantics.to_semantics()),
                            slot as u16,
                            0,
                            old_word,
                            new_word,
                        )
                    });
                }
            }
        }
        let epoch = self.epochs.fetch_add(1, Ordering::Relaxed);
        trace::emit(|| {
            TraceEvent::new(trace::code::ADVISOR_EPOCH, 0, trace::NO_CLASS, flips, epoch, 0)
        });
    }
}

impl SemanticsSource for Advisor {
    fn plan(&self, class: ClassId, retries: u32, requested: Semantics) -> AttemptPlan {
        let slot = ClassTable::slot(class);
        let policy = match Policy::decode(self.policies[slot].load(Ordering::Relaxed)) {
            Some(p) => p,
            // No data-backed policy yet: run as requested.
            None => return AttemptPlan::semantics(requested),
        };
        if retries >= u32::from(policy.escalate_after) {
            // Liveness escalation: this attempt runs irrevocably (the
            // core's own fallback remains as the backstop).
            return AttemptPlan {
                semantics: Semantics::Irrevocable,
                arbiter: Some(policy.cm.to_arbiter()),
            };
        }
        let mut semantics = policy.semantics;
        // Serve-time safety: a class observed writing is never handed
        // Snapshot, whatever the table says (the table may predate the
        // first observed write).
        if semantics == SemanticsChoice::Snapshot && self.stats.has_written(slot) {
            semantics = SemanticsChoice::Elastic;
        }
        AttemptPlan { semantics: semantics.to_semantics(), arbiter: Some(policy.cm.to_arbiter()) }
    }

    fn observe(&self, telemetry: &RunTelemetry) {
        self.stats.record(telemetry);
        let n = self.observations.fetch_add(1, Ordering::Relaxed) + 1;
        let boundary = self.next_epoch.load(Ordering::Relaxed);
        if n >= boundary
            && self
                .next_epoch
                .compare_exchange(
                    boundary,
                    boundary + self.config.epoch_runs,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_ok()
        {
            // Exactly one thread crosses each boundary and closes the
            // epoch; the others see the bumped boundary and move on.
            self.close_epoch();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_only_run(class: u16, reads: u64) -> RunTelemetry {
        RunTelemetry {
            class: ClassId(class),
            requested: Semantics::elastic(),
            committed_semantics: Semantics::elastic(),
            retries: 0,
            aborts_lock: 0,
            aborts_validation: 0,
            aborts_cut: 0,
            aborts_capacity: 0,
            aborts_unavailable: 0,
            aborts_other: 0,
            reads,
            writes: 0,
            wrote: false,
            upgraded: false,
            read_only_violation: false,
        }
    }

    fn writing_run(class: u16) -> RunTelemetry {
        RunTelemetry { writes: 1, wrote: true, ..read_only_run(class, 3) }
    }

    fn tiny_config() -> AdvisorConfig {
        AdvisorConfig { epoch_runs: 32, min_epoch_runs: 8, ..AdvisorConfig::default() }
    }

    #[test]
    fn unplanned_classes_run_as_requested() {
        let advisor = Advisor::default();
        let plan = advisor.plan(ClassId(0), 0, Semantics::Opaque);
        assert_eq!(plan.semantics, Semantics::Opaque);
        assert!(plan.arbiter.is_none());
        assert_eq!(advisor.policy(ClassId(0)), None);
    }

    #[test]
    fn read_only_scan_class_converges_to_snapshot() {
        let advisor = Advisor::new(tiny_config());
        // Two epochs of long read-only runs (cold start adopts on the
        // first closed epoch).
        for _ in 0..64 {
            advisor.observe(&read_only_run(2, 40));
        }
        assert!(advisor.epochs() >= 2);
        let policy = advisor.policy(ClassId(2)).expect("policy selected");
        assert_eq!(policy.semantics, SemanticsChoice::Snapshot);
        let plan = advisor.plan(ClassId(2), 0, Semantics::elastic());
        assert_eq!(plan.semantics, Semantics::Snapshot);
    }

    #[test]
    fn low_rate_classes_accumulate_across_thin_epochs() {
        // A class with fewer than min_epoch_runs runs per epoch must
        // still classify eventually: thin deltas accumulate instead of
        // being consumed and discarded.
        let advisor = Advisor::new(tiny_config()); // epoch 32, min 8
        for _ in 0..10 {
            // Per epoch: 3 runs of the rare class 4, 29 of class 5.
            for _ in 0..3 {
                advisor.observe(&read_only_run(4, 40));
            }
            for _ in 0..29 {
                advisor.observe(&writing_run(5));
            }
        }
        assert!(
            advisor.policy(ClassId(4)).is_some(),
            "30 lifetime runs must classify the rare class even at 3 runs/epoch"
        );
        assert_eq!(advisor.policy(ClassId(4)).unwrap().semantics, SemanticsChoice::Snapshot);
    }

    #[test]
    fn escalation_plans_irrevocable_after_the_threshold() {
        let advisor = Advisor::new(tiny_config());
        for _ in 0..64 {
            advisor.observe(&writing_run(1));
        }
        let policy = advisor.policy(ClassId(1)).expect("policy selected");
        let calm = advisor.plan(ClassId(1), 0, Semantics::Opaque);
        assert_ne!(calm.semantics, Semantics::Irrevocable);
        let desperate =
            advisor.plan(ClassId(1), u32::from(policy.escalate_after), Semantics::Opaque);
        assert_eq!(desperate.semantics, Semantics::Irrevocable);
    }

    #[test]
    fn serve_time_snapshot_override_tracks_late_writes() {
        let advisor = Advisor::new(tiny_config());
        // Converge to Snapshot on read-only data...
        for _ in 0..64 {
            advisor.observe(&read_only_run(3, 40));
        }
        assert_eq!(advisor.policy(ClassId(3)).unwrap().semantics, SemanticsChoice::Snapshot);
        // ...then observe a single write. The policy table still says
        // Snapshot, but plan() must stop serving it immediately.
        advisor.observe(&writing_run(3));
        let plan = advisor.plan(ClassId(3), 0, Semantics::elastic());
        assert_ne!(plan.semantics, Semantics::Snapshot);
    }

    #[test]
    fn end_to_end_with_an_stm() {
        use std::sync::Arc;
        let advisor = Arc::new(Advisor::new(tiny_config()));
        let stm =
            polytm::Stm::with_advisor(polytm::StmConfig::default(), Arc::clone(&advisor) as _);
        let vars: Vec<_> = (0..64).map(|i| stm.new_tvar(i as i64)).collect();
        let lookups = polytm::TxParams::new(Semantics::elastic()).with_class(ClassId(0));
        let updates = polytm::TxParams::new(Semantics::elastic()).with_class(ClassId(1));
        for round in 0..200u64 {
            // A scan-shaped read-only class...
            let sum = stm.run(lookups, |tx| {
                let mut acc = 0i64;
                for v in &vars {
                    acc += v.read(tx)?;
                }
                Ok(acc)
            });
            assert!(sum >= 0);
            // ...and a short writing class.
            let i = (round % 64) as usize;
            stm.run(updates, |tx| {
                let cur = vars[i].read(tx)?;
                vars[i].write(tx, cur + 1)
            });
        }
        assert!(advisor.epochs() >= 2, "epochs must close from observe()");
        let scans = advisor.policy(ClassId(0)).expect("scan class classified");
        assert_eq!(scans.semantics, SemanticsChoice::Snapshot, "long read-only class → snapshot");
        let writes = advisor.policy(ClassId(1)).expect("update class classified");
        assert_ne!(
            writes.semantics,
            SemanticsChoice::Snapshot,
            "writing class must stay revocable"
        );
        assert!(advisor.has_written(ClassId(1)));
        assert!(!advisor.has_written(ClassId(0)));
    }
}
