//! Per-class telemetry: cheap sharded counters fed by
//! [`polytm::SemanticsSource::observe`] and aggregated on the epoch
//! cadence.
//!
//! Layout mirrors the core's `StmStats`: each thread lands in one
//! cache-padded shard (no globally shared line on the record path); the
//! controller sums across shards when an epoch closes. One extra word
//! per class is *sticky*: the has-ever-written bit, which is never
//! reset — it backs the hard safety rule that a writing class is never
//! assigned snapshot semantics.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crossbeam_utils::CachePadded;
use polytm::{current_thread_index, RunTelemetry};

/// Number of distinct class slots the advisor tracks. Class ids fold
/// into this table (`id % MAX_CLASSES`); colliding classes share a slot
/// — merely less precise, never unsafe (the sticky write bit is
/// conservative under sharing).
pub const MAX_CLASSES: usize = 32;

/// Counter shards (power of two).
const SHARDS: usize = 8;

/// Counters per (shard, class) cell.
const COUNTERS: usize = 10;

// Indices into a cell.
const C_RUNS: usize = 0;
const C_RETRIES: usize = 1;
const C_AB_LOCK: usize = 2;
const C_AB_VALIDATION: usize = 3;
const C_AB_CUT: usize = 4;
const C_AB_CAPACITY: usize = 5;
const C_AB_OTHER: usize = 6;
const C_READS: usize = 7;
const C_WRITES: usize = 8;
const C_UPGRADES: usize = 9;

/// One shard: a dense `[class][counter]` block. A thread touches only
/// its own shard, so the padding boundary is the shard, not the cell.
struct Shard {
    cells: [[AtomicU64; COUNTERS]; MAX_CLASSES],
}

impl Shard {
    fn new() -> Self {
        Self { cells: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))) }
    }
}

/// The sharded per-class telemetry table.
pub struct ClassTable {
    shards: Box<[CachePadded<Shard>]>,
    /// Sticky: has this class *ever* been observed writing? Never
    /// cleared (epoch resets must not forget a write — the Snapshot
    /// safety rule is a lifetime invariant, not a per-epoch one).
    wrote: [AtomicBool; MAX_CLASSES],
}

impl Default for ClassTable {
    fn default() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| CachePadded::new(Shard::new())).collect(),
            wrote: std::array::from_fn(|_| AtomicBool::new(false)),
        }
    }
}

impl ClassTable {
    /// Fold a class id into the table.
    pub fn slot(class: polytm::ClassId) -> usize {
        class.0 as usize % MAX_CLASSES
    }

    /// Record one completed run's telemetry.
    pub fn record(&self, t: &RunTelemetry) {
        let slot = Self::slot(t.class);
        let cell = &self.shards[current_thread_index() % SHARDS].cells[slot];
        cell[C_RUNS].fetch_add(1, Ordering::Relaxed);
        if t.retries > 0 {
            cell[C_RETRIES].fetch_add(u64::from(t.retries), Ordering::Relaxed);
        }
        for (idx, n) in [
            (C_AB_LOCK, t.aborts_lock),
            (C_AB_VALIDATION, t.aborts_validation),
            (C_AB_CUT, t.aborts_cut),
            // Registry-capacity and history-unavailable aborts both mean
            // "this class's snapshot bounds are starving", which is the
            // one thing the controller's capacity signal exists to
            // detect — fold them into one bucket.
            (C_AB_CAPACITY, t.aborts_capacity + t.aborts_unavailable),
            (C_AB_OTHER, t.aborts_other),
        ] {
            if n > 0 {
                cell[idx].fetch_add(u64::from(n), Ordering::Relaxed);
            }
        }
        if t.reads > 0 {
            cell[C_READS].fetch_add(t.reads, Ordering::Relaxed);
        }
        if t.writes > 0 {
            cell[C_WRITES].fetch_add(t.writes, Ordering::Relaxed);
        }
        if t.upgraded {
            cell[C_UPGRADES].fetch_add(1, Ordering::Relaxed);
        }
        if t.wrote && !self.wrote[slot].load(Ordering::Relaxed) {
            // Checked first so steady-state writing classes read a
            // shared line instead of storing to it on every run; only
            // the first writer's store publishes (no ordering guarantee
            // for later writers' counters — readers sum the counters
            // Relaxed and treat them as approximate anyway). The bit is
            // allowed to win races: extra safety, never less.
            self.wrote[slot].store(true, Ordering::Release);
        }
    }

    /// Sticky has-ever-written bit for a class slot.
    pub fn has_written(&self, slot: usize) -> bool {
        self.wrote[slot].load(Ordering::Acquire)
    }

    /// Aggregate a class slot across shards (monotonic lifetime totals).
    pub fn totals(&self, slot: usize) -> ClassTotals {
        let mut out = [0u64; COUNTERS];
        for shard in self.shards.iter() {
            for (acc, ctr) in out.iter_mut().zip(shard.cells[slot].iter()) {
                *acc += ctr.load(Ordering::Relaxed);
            }
        }
        ClassTotals {
            runs: out[C_RUNS],
            retries: out[C_RETRIES],
            aborts_lock: out[C_AB_LOCK],
            aborts_validation: out[C_AB_VALIDATION],
            aborts_cut: out[C_AB_CUT],
            aborts_capacity: out[C_AB_CAPACITY],
            aborts_other: out[C_AB_OTHER],
            reads: out[C_READS],
            writes: out[C_WRITES],
            upgrades: out[C_UPGRADES],
        }
    }
}

/// Aggregated counters for one class (lifetime totals, or an epoch
/// delta via [`ClassTotals::delta_since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing counter labels
pub struct ClassTotals {
    pub runs: u64,
    pub retries: u64,
    pub aborts_lock: u64,
    pub aborts_validation: u64,
    pub aborts_cut: u64,
    pub aborts_capacity: u64,
    pub aborts_other: u64,
    pub reads: u64,
    pub writes: u64,
    pub upgrades: u64,
}

impl ClassTotals {
    /// Contention aborts (the four causes; user retries excluded).
    pub fn contention_aborts(&self) -> u64 {
        self.aborts_lock + self.aborts_validation + self.aborts_cut + self.aborts_capacity
    }

    /// Contention aborts per run; 0.0 when no runs.
    pub fn abort_ratio(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.contention_aborts() as f64 / self.runs as f64
        }
    }

    /// Mean observed reads per run (0 when no runs).
    pub fn avg_reads(&self) -> u64 {
        self.reads.checked_div(self.runs).unwrap_or(0)
    }

    /// Counter-wise difference (for per-epoch accounting).
    pub fn delta_since(&self, earlier: &ClassTotals) -> ClassTotals {
        ClassTotals {
            runs: self.runs - earlier.runs,
            retries: self.retries - earlier.retries,
            aborts_lock: self.aborts_lock - earlier.aborts_lock,
            aborts_validation: self.aborts_validation - earlier.aborts_validation,
            aborts_cut: self.aborts_cut - earlier.aborts_cut,
            aborts_capacity: self.aborts_capacity - earlier.aborts_capacity,
            aborts_other: self.aborts_other - earlier.aborts_other,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            upgrades: self.upgrades - earlier.upgrades,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytm::{ClassId, Semantics};

    fn telemetry(class: u16) -> RunTelemetry {
        // Build through the public surface: a RunTelemetry is Copy with
        // all-public fields.
        let mut t = sample();
        t.class = ClassId(class);
        t
    }

    fn sample() -> RunTelemetry {
        RunTelemetry {
            class: ClassId(0),
            requested: Semantics::elastic(),
            committed_semantics: Semantics::elastic(),
            retries: 2,
            aborts_lock: 1,
            aborts_validation: 1,
            aborts_cut: 0,
            aborts_capacity: 0,
            aborts_unavailable: 0,
            aborts_other: 0,
            reads: 10,
            writes: 1,
            wrote: true,
            upgraded: false,
            read_only_violation: false,
        }
    }

    #[test]
    fn record_and_aggregate() {
        let table = ClassTable::default();
        for _ in 0..5 {
            table.record(&telemetry(3));
        }
        let t = table.totals(3);
        assert_eq!(t.runs, 5);
        assert_eq!(t.retries, 10);
        assert_eq!(t.aborts_lock, 5);
        assert_eq!(t.contention_aborts(), 10);
        assert_eq!(t.avg_reads(), 10);
        assert!((t.abort_ratio() - 2.0).abs() < 1e-12);
        assert_eq!(table.totals(4), ClassTotals::default(), "other classes untouched");
    }

    #[test]
    fn wrote_bit_is_sticky() {
        let table = ClassTable::default();
        assert!(!table.has_written(1));
        let mut t = telemetry(1);
        t.wrote = false;
        table.record(&t);
        assert!(!table.has_written(1));
        t.wrote = true;
        table.record(&t);
        assert!(table.has_written(1));
        // Later read-only observations never clear it.
        t.wrote = false;
        table.record(&t);
        assert!(table.has_written(1));
    }

    #[test]
    fn class_ids_fold_into_the_table() {
        assert_eq!(ClassTable::slot(ClassId(0)), 0);
        assert_eq!(ClassTable::slot(ClassId(MAX_CLASSES as u16)), 0);
        assert_eq!(ClassTable::slot(ClassId(MAX_CLASSES as u16 + 3)), 3);
        let table = ClassTable::default();
        table.record(&telemetry(MAX_CLASSES as u16 + 3));
        assert_eq!(table.totals(3).runs, 1);
    }

    #[test]
    fn delta_since_subtracts_counterwise() {
        let table = ClassTable::default();
        table.record(&telemetry(0));
        let first = table.totals(0);
        table.record(&telemetry(0));
        let second = table.totals(0);
        let d = second.delta_since(&first);
        assert_eq!(d.runs, 1);
        assert_eq!(d.reads, 10);
    }

    #[test]
    fn concurrent_records_aggregate() {
        let table = ClassTable::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        table.record(&telemetry(7));
                    }
                });
            }
        });
        assert_eq!(table.totals(7).runs, 400);
    }
}
