//! The epoch controller: turns one epoch's telemetry delta into a
//! policy candidate, and gates candidates through hysteresis so one
//! noisy epoch cannot flip a class's policy.
//!
//! Selection is a pure function ([`select`]) — trivially unit-testable
//! — and the hysteresis bookkeeping (`HysteresisGate`) is plain
//! state: a candidate must win `hysteresis` *consecutive* epochs to
//! replace the incumbent. The cold start is the exception: the first
//! data-backed candidate for a class is adopted immediately (there is
//! no incumbent worth protecting).

use crate::policy::{CmChoice, Policy, SemanticsChoice};
use crate::telemetry::ClassTotals;

/// Tuning knobs of the [`crate::Advisor`].
#[derive(Debug, Clone, Copy)]
pub struct AdvisorConfig {
    /// Observed runs per epoch (across all classes): the reselection
    /// cadence. Counted in operations, not time, so controller behavior
    /// is deterministic under test.
    pub epoch_runs: u64,
    /// Consecutive epochs a differing candidate must win before it
    /// replaces the incumbent policy.
    pub hysteresis: u32,
    /// Minimum runs a class needs inside one epoch for its delta to be
    /// trusted; below this the class keeps its policy.
    pub min_epoch_runs: u64,
    /// Read-only classes at or above this mean read-set length get
    /// snapshot semantics (long scans shouldn't validate at all).
    pub snapshot_read_len: u64,
    /// Writing classes at or above this mean read-set length get
    /// elastic semantics (traversal-shaped updates benefit from cuts);
    /// below it, opaque (short transactions validate cheaply).
    pub elastic_read_len: u64,
    /// Contention-abort-per-run ratio at which a class counts as hot:
    /// hot classes get contention-specific CMs and earlier escalation.
    pub hot_abort_ratio: f64,
    /// Escalation threshold (retries before an attempt goes
    /// irrevocable) for cool classes.
    pub escalate_after: u8,
    /// Escalation threshold for hot classes.
    pub escalate_after_hot: u8,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        Self {
            epoch_runs: 512,
            hysteresis: 2,
            min_epoch_runs: 16,
            snapshot_read_len: 8,
            elastic_read_len: 4,
            hot_abort_ratio: 0.35,
            escalate_after: 48,
            escalate_after_hot: 12,
        }
    }
}

/// Select the policy candidate for one class from one epoch's delta.
///
/// `wrote` is the class's *lifetime* sticky write flag, not the epoch's:
/// the Snapshot rule must survive phases in which a writing class
/// happens to read only.
pub fn select(cfg: &AdvisorConfig, wrote: bool, delta: &ClassTotals, current: Policy) -> Policy {
    if delta.runs < cfg.min_epoch_runs {
        return current;
    }
    let contention = delta.abort_ratio();
    let hot = contention >= cfg.hot_abort_ratio;
    let avg_reads = delta.avg_reads();
    // Capacity aborts are *Snapshot starving* (bounded history truncated
    // under its bound), so they argue against Snapshot, never for it —
    // only the optimistic causes make Snapshot attractive. Folding
    // capacity into the pro-Snapshot signal would be a positive feedback
    // loop: Snapshot causes capacity aborts, which would then keep
    // selecting Snapshot.
    let optimistic_hot = (delta.aborts_lock + delta.aborts_validation + delta.aborts_cut) as f64
        / delta.runs as f64
        >= cfg.hot_abort_ratio;
    let capacity_starved = delta.aborts_capacity as f64 / delta.runs as f64 >= cfg.hot_abort_ratio;
    let semantics = if wrote {
        // Writing classes may never be Snapshot (hard rule). Long
        // traversals tolerate concurrent updates elastically; short
        // ones validate cheaply as opaque.
        if avg_reads >= cfg.elastic_read_len {
            SemanticsChoice::Elastic
        } else {
            SemanticsChoice::Opaque
        }
    } else if capacity_starved {
        // History keeps getting truncated under snapshot bounds: fall
        // back to optimistic reads.
        SemanticsChoice::Elastic
    } else if avg_reads >= cfg.snapshot_read_len
        || (optimistic_hot && avg_reads >= cfg.elastic_read_len)
    {
        // Read-only and either long (validation cost scales with the
        // read set) or contended *and* non-trivial (optimistic reads
        // keep aborting): multi-versioned reads sidestep both. Very
        // short reads stay optimistic even when hot — retrying a
        // two-read transaction is cheaper than walking version chains
        // of hot locations.
        SemanticsChoice::Snapshot
    } else {
        SemanticsChoice::Elastic
    };
    let cm = if !hot {
        CmChoice::Backoff
    } else if delta.aborts_lock > delta.aborts_validation + delta.aborts_cut {
        // Lock-dominated contention: who-waits-for-whom matters, so age
        // by timestamp instead of blind backoff.
        CmChoice::Greedy
    } else {
        // Validation/cut-dominated: desynchronize retries harder.
        CmChoice::BackoffAggressive
    };
    let escalate_after = if hot { cfg.escalate_after_hot } else { cfg.escalate_after };
    Policy { semantics, cm, escalate_after }
}

/// Hysteresis state for one class.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct HysteresisGate {
    pending: Option<Policy>,
    streak: u32,
}

impl HysteresisGate {
    /// Feed one epoch's candidate; returns the policy to install now
    /// (`Some` only when the candidate clears the gate).
    pub(crate) fn admit(
        &mut self,
        candidate: Policy,
        current: Option<Policy>,
        hysteresis: u32,
    ) -> Option<Policy> {
        let current = match current {
            // Cold start: adopt the first data-backed candidate.
            None => {
                self.pending = None;
                self.streak = 0;
                return Some(candidate);
            }
            Some(p) => p,
        };
        if candidate == current {
            // The incumbent keeps winning: clear any pending challenger.
            self.pending = None;
            self.streak = 0;
            return None;
        }
        self.streak = if self.pending == Some(candidate) { self.streak + 1 } else { 1 };
        self.pending = Some(candidate);
        if self.streak >= hysteresis {
            self.pending = None;
            self.streak = 0;
            Some(candidate)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdvisorConfig {
        AdvisorConfig::default()
    }

    fn delta(
        runs: u64,
        reads_per_run: u64,
        aborts_lock: u64,
        aborts_validation: u64,
    ) -> ClassTotals {
        ClassTotals {
            runs,
            reads: runs * reads_per_run,
            aborts_lock,
            aborts_validation,
            ..ClassTotals::default()
        }
    }

    #[test]
    fn read_only_long_classes_get_snapshot() {
        let p = select(&cfg(), false, &delta(100, 20, 0, 0), Policy::initial());
        assert_eq!(p.semantics, SemanticsChoice::Snapshot);
        assert_eq!(p.cm, CmChoice::Backoff);
        assert_eq!(p.escalate_after, cfg().escalate_after);
    }

    #[test]
    fn read_only_short_quiet_classes_stay_elastic() {
        let p = select(&cfg(), false, &delta(100, 2, 1, 1), Policy::initial());
        assert_eq!(p.semantics, SemanticsChoice::Elastic);
    }

    #[test]
    fn contended_read_only_classes_get_snapshot_when_non_trivial() {
        // Medium-length contended reads go multi-versioned...
        let p = select(&cfg(), false, &delta(100, 5, 60, 0), Policy::initial());
        assert_eq!(p.semantics, SemanticsChoice::Snapshot);
        // ...but trivial (two-read) ones stay optimistic even when hot:
        // retrying them is cheaper than walking hot version chains.
        let p = select(&cfg(), false, &delta(100, 2, 60, 0), Policy::initial());
        assert_eq!(p.semantics, SemanticsChoice::Elastic);
    }

    #[test]
    fn capacity_starved_read_only_classes_avoid_snapshot() {
        // Capacity aborts mean Snapshot itself is failing (history
        // truncated under the bound): they must not feed the
        // pro-Snapshot contention signal — that would be a positive
        // feedback loop — and a capacity-starved class backs off to
        // optimistic reads.
        let d = ClassTotals {
            runs: 100,
            reads: 100 * 50,
            aborts_capacity: 60,
            ..ClassTotals::default()
        };
        let p = select(&cfg(), false, &d, Policy::initial());
        assert_eq!(p.semantics, SemanticsChoice::Elastic);
        // The class still counts as hot for CM/escalation purposes.
        assert_eq!(p.escalate_after, cfg().escalate_after_hot);
    }

    #[test]
    fn writing_classes_never_get_snapshot() {
        // Even with a scan-shaped profile, the sticky write flag forces
        // a revocable writing semantics.
        let p = select(&cfg(), true, &delta(100, 50, 0, 0), Policy::initial());
        assert_eq!(p.semantics, SemanticsChoice::Elastic);
        let p = select(&cfg(), true, &delta(100, 1, 0, 0), Policy::initial());
        assert_eq!(p.semantics, SemanticsChoice::Opaque);
    }

    #[test]
    fn hot_lock_dominated_classes_get_greedy_and_early_escalation() {
        let p = select(&cfg(), true, &delta(100, 6, 50, 5), Policy::initial());
        assert_eq!(p.cm, CmChoice::Greedy);
        assert_eq!(p.escalate_after, cfg().escalate_after_hot);
    }

    #[test]
    fn hot_validation_dominated_classes_get_aggressive_backoff() {
        let p = select(&cfg(), true, &delta(100, 6, 5, 50), Policy::initial());
        assert_eq!(p.cm, CmChoice::BackoffAggressive);
    }

    #[test]
    fn thin_epochs_keep_the_incumbent() {
        let incumbent =
            Policy { semantics: SemanticsChoice::Opaque, cm: CmChoice::Greedy, escalate_after: 9 };
        let p = select(&cfg(), false, &delta(3, 50, 0, 0), incumbent);
        assert_eq!(p, incumbent);
    }

    #[test]
    fn hysteresis_requires_consecutive_wins() {
        let mut gate = HysteresisGate::default();
        let incumbent = Policy::initial();
        let challenger = Policy {
            semantics: SemanticsChoice::Snapshot,
            cm: CmChoice::Backoff,
            escalate_after: 48,
        };
        // Epoch 1: challenger appears — not admitted yet.
        assert_eq!(gate.admit(challenger, Some(incumbent), 2), None);
        // Epoch 2 (noise): incumbent wins again — streak resets.
        assert_eq!(gate.admit(incumbent, Some(incumbent), 2), None);
        // Epochs 3–4: challenger wins twice consecutively — admitted.
        assert_eq!(gate.admit(challenger, Some(incumbent), 2), None);
        assert_eq!(gate.admit(challenger, Some(incumbent), 2), Some(challenger));
    }

    #[test]
    fn cold_start_adopts_immediately() {
        let mut gate = HysteresisGate::default();
        let candidate = Policy::initial();
        assert_eq!(gate.admit(candidate, None, 2), Some(candidate));
    }

    #[test]
    fn switching_challengers_restarts_the_streak() {
        let mut gate = HysteresisGate::default();
        let incumbent = Policy::initial();
        let a = Policy {
            semantics: SemanticsChoice::Snapshot,
            cm: CmChoice::Backoff,
            escalate_after: 48,
        };
        let b =
            Policy { semantics: SemanticsChoice::Opaque, cm: CmChoice::Greedy, escalate_after: 12 };
        assert_eq!(gate.admit(a, Some(incumbent), 2), None);
        assert_eq!(
            gate.admit(b, Some(incumbent), 2),
            None,
            "different challenger: streak restarts"
        );
        assert_eq!(gate.admit(b, Some(incumbent), 2), Some(b));
    }
}
