//! The advisor's view into the unified metrics plane: per-class
//! telemetry totals and the currently installed policies, flattened
//! into `polytm-obs`'s canonical key space.

use polytm_obs::MetricsSource;

use crate::policy::CmChoice;
use crate::telemetry::MAX_CLASSES;
use crate::Advisor;

/// Numeric code for a [`CmChoice`] in metric values (stable, documented
/// in `docs/RUNBOOK.md`).
fn cm_code(cm: CmChoice) -> f64 {
    match cm {
        CmChoice::Suicide => 0.0,
        CmChoice::Backoff => 1.0,
        CmChoice::BackoffAggressive => 2.0,
        CmChoice::Greedy => 3.0,
    }
}

/// Register an [`Advisor`] under a prefix (conventionally `advisor`) to
/// export `epochs`, and for every class with observed runs:
/// `class.<slot>.{runs,retries,reads,writes,upgrades,abort_ratio}`,
/// the per-cause `class.<slot>.aborts.*` split, and — once a policy is
/// installed — `class.<slot>.policy.{semantics,cm,escalate_after}`
/// (semantics uses [`polytm::trace::semantics_code`] values, cm the
/// codes above).
impl MetricsSource for Advisor {
    fn collect(&self, out: &mut Vec<(String, f64)>) {
        out.push(("epochs".to_string(), self.epochs() as f64));
        for slot in 0..MAX_CLASSES {
            let class = polytm::ClassId(slot as u16);
            let t = self.totals(class);
            if t.runs == 0 {
                continue;
            }
            let mut push = |suffix: &str, v: f64| {
                out.push((format!("class.{slot}.{suffix}"), v));
            };
            push("runs", t.runs as f64);
            push("retries", t.retries as f64);
            push("aborts.lock", t.aborts_lock as f64);
            push("aborts.validation", t.aborts_validation as f64);
            push("aborts.cut", t.aborts_cut as f64);
            push("aborts.capacity", t.aborts_capacity as f64);
            push("aborts.other", t.aborts_other as f64);
            push("reads", t.reads as f64);
            push("writes", t.writes as f64);
            push("upgrades", t.upgrades as f64);
            push("abort_ratio", t.abort_ratio());
            push("wrote", f64::from(u8::from(self.has_written(class))));
            if let Some(p) = self.policy(class) {
                push(
                    "policy.semantics",
                    f64::from(polytm::trace::semantics_code(p.semantics.to_semantics())),
                );
                push("policy.cm", cm_code(p.cm));
                push("policy.escalate_after", f64::from(p.escalate_after));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polytm::{ClassId, RunTelemetry, Semantics, SemanticsSource};

    #[test]
    fn exports_only_observed_classes_and_their_policies() {
        let advisor = Advisor::default();
        let telemetry = RunTelemetry {
            class: ClassId(3),
            requested: Semantics::elastic(),
            committed_semantics: Semantics::elastic(),
            retries: 0,
            aborts_lock: 0,
            aborts_validation: 0,
            aborts_cut: 0,
            aborts_capacity: 0,
            aborts_unavailable: 0,
            aborts_other: 0,
            reads: 8,
            writes: 0,
            wrote: false,
            upgraded: false,
            read_only_violation: false,
        };
        for _ in 0..32 {
            advisor.observe(&telemetry);
        }
        advisor.close_epoch();
        let mut out = Vec::new();
        advisor.collect(&mut out);
        let get = |k: &str| out.iter().find(|(key, _)| key == k).map(|(_, v)| *v);
        assert_eq!(get("epochs"), Some(1.0));
        assert_eq!(get("class.3.runs"), Some(32.0));
        assert!(get("class.3.policy.semantics").is_some(), "policy installed after epoch");
        assert_eq!(get("class.0.runs"), None, "silent classes are omitted");
    }
}
