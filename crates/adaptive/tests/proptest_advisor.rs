//! Property tests for the advisor's hard safety rule: under *any*
//! sequence of observations, a class ever observed writing is never
//! served snapshot semantics (which would reject its writes), at any
//! retry count below escalation — and escalated attempts are
//! irrevocable, which also accepts writes.

use proptest::prelude::*;

use polytm::{ClassId, RunTelemetry, Semantics, SemanticsSource};
use polytm_adaptive::{Advisor, AdvisorConfig};

/// One synthetic observation: shaped enough to stress the classifier in
/// every direction (long/short, contended/quiet, writing/read-only).
fn telemetry_strategy() -> impl Strategy<Value = RunTelemetry> {
    // The vendored proptest implements strategies for tuples up to
    // arity 4; nest tuples for the wider shape.
    (
        (0u16..8, 0u64..64),        // class, reads
        (0u64..4, prop::bool::ANY), // writes; wrote flag independent of
        //                             `writes` (covers the eager and
        //                             violation paths where writes stay 0)
        (0u32..6, 0u32..6, 0u32..6), // retries, aborts_lock, aborts_validation
    )
        .prop_map(
            |((class, reads), (writes, wrote_flag), (retries, aborts_lock, aborts_validation))| {
                RunTelemetry {
                    class: ClassId(class),
                    requested: Semantics::elastic(),
                    committed_semantics: Semantics::elastic(),
                    retries,
                    aborts_lock,
                    aborts_validation,
                    aborts_cut: 0,
                    aborts_capacity: 0,
                    aborts_unavailable: 0,
                    aborts_other: 0,
                    reads,
                    writes,
                    wrote: wrote_flag || writes > 0,
                    upgraded: false,
                    read_only_violation: false,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    ))]

    /// The invariant the whole subsystem hangs on: writing classes are
    /// never handed `Semantics::Snapshot`, whatever the telemetry
    /// history looked like and wherever the epoch boundaries fell.
    #[test]
    fn writing_classes_are_never_served_snapshot(
        observations in prop::collection::vec(telemetry_strategy(), 1..300),
    ) {
        // A tiny epoch so reselection happens many times mid-sequence.
        let advisor = Advisor::new(AdvisorConfig {
            epoch_runs: 16,
            min_epoch_runs: 4,
            ..AdvisorConfig::default()
        });
        let mut wrote_seen = [false; 8];
        for t in &observations {
            advisor.observe(t);
            wrote_seen[t.class.0 as usize] |= t.wrote;
            // Check the invariant after *every* observation, for every
            // class and a spread of retry counts.
            for class in 0..8u16 {
                if !wrote_seen[class as usize] {
                    continue;
                }
                for retries in [0u32, 1, 7, 47] {
                    let plan = advisor.plan(ClassId(class), retries, Semantics::elastic());
                    prop_assert!(
                        plan.semantics != Semantics::Snapshot,
                        "class {} served Snapshot after a write was observed (retries {})",
                        class,
                        retries
                    );
                }
            }
        }
    }

    /// Escalated attempts are always irrevocable, never snapshot, for
    /// any class — the liveness valve must accept writes too.
    #[test]
    fn escalated_attempts_are_irrevocable(
        observations in prop::collection::vec(telemetry_strategy(), 32..128),
    ) {
        let advisor = Advisor::new(AdvisorConfig {
            epoch_runs: 16,
            min_epoch_runs: 4,
            ..AdvisorConfig::default()
        });
        for t in &observations {
            advisor.observe(t);
        }
        for class in 0..8u16 {
            if let Some(policy) = advisor.policy(ClassId(class)) {
                let plan = advisor.plan(
                    ClassId(class),
                    u32::from(policy.escalate_after),
                    Semantics::elastic(),
                );
                prop_assert_eq!(plan.semantics, Semantics::Irrevocable);
            }
        }
    }
}
