//! Property tests for the formal model: structural laws that must hold
//! for *every* program and interleaving, checked on random instances.

use proptest::prelude::*;

use polytm_schedule::{
    accepts, enumerate_interleavings, Access, AccessKind, Interleaving, OpSemantics, OpSpec,
    Program, Synchronization,
};

fn access_strategy(regs: usize) -> impl Strategy<Value = Access> {
    (0..regs, prop::bool::ANY).prop_map(|(reg, write)| Access {
        kind: if write { AccessKind::Write } else { AccessKind::Read },
        reg,
    })
}

fn op_strategy(regs: usize) -> impl Strategy<Value = OpSpec> {
    (
        prop::collection::vec(access_strategy(regs), 1..4),
        prop_oneof![
            Just(OpSemantics::Monomorphic),
            (1usize..4).prop_map(|w| OpSemantics::Elastic { window: w })
        ],
    )
        .prop_map(|(accesses, semantics)| OpSpec { accesses, semantics })
}

fn program_strategy() -> impl Strategy<Value = Program> {
    prop::collection::vec(op_strategy(3), 1..4).prop_map(Program::new)
}

/// Pick one interleaving of `program` pseudo-randomly from `index`.
fn pick_interleaving(program: &Program, index: usize) -> Interleaving {
    let all = enumerate_interleavings(program);
    all[index % all.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serial schedules are accepted by every synchronization (every
    /// critical step trivially serializes at its own position).
    #[test]
    fn serial_is_always_accepted(program in program_strategy()) {
        let s = Interleaving::serial(&program);
        for sync in [
            Synchronization::LockBased,
            Synchronization::Monomorphic,
            Synchronization::Polymorphic,
        ] {
            prop_assert!(
                accepts(&program, &s, sync).accepted,
                "serial schedule rejected by {sync:?}:\n{}",
                s.render(&program)
            );
        }
    }

    /// Theorem 2's inclusion on random instances: monomorphic-accepted
    /// implies polymorphic-accepted (finer steps only relax constraints).
    #[test]
    fn mono_accepted_implies_poly_accepted(
        program in program_strategy(),
        idx in 0usize..100_000,
    ) {
        prop_assume!(program.total_events() <= 10); // keep enumeration small
        let inter = pick_interleaving(&program, idx);
        let mono = accepts(&program, &inter, Synchronization::Monomorphic).accepted;
        let poly = accepts(&program, &inter, Synchronization::Polymorphic).accepted;
        prop_assert!(!mono || poly, "inclusion violated:\n{}", inter.render(&program));
    }

    /// Theorem 1's inclusion on random instances: monomorphic-accepted
    /// implies lock-accepted.
    #[test]
    fn mono_accepted_implies_lock_accepted(
        program in program_strategy(),
        idx in 0usize..100_000,
    ) {
        prop_assume!(program.total_events() <= 10);
        let inter = pick_interleaving(&program, idx);
        let mono = accepts(&program, &inter, Synchronization::Monomorphic).accepted;
        let lock = accepts(&program, &inter, Synchronization::LockBased).accepted;
        prop_assert!(!mono || lock, "inclusion violated:\n{}", inter.render(&program));
    }

    /// Widening an elastic window only *restricts* acceptance: a schedule
    /// accepted with window w+1 is accepted with window w (larger windows
    /// mean coarser critical steps, i.e. stronger semantics).
    #[test]
    fn wider_windows_accept_fewer_schedules(
        accesses in prop::collection::vec(access_strategy(2), 1..4),
        idx in 0usize..100_000,
        w in 1usize..3,
    ) {
        let narrow = Program::new(vec![
            OpSpec { accesses: accesses.clone(), semantics: OpSemantics::Elastic { window: w } },
            OpSpec::mono(vec![Access { kind: AccessKind::Write, reg: 0 }]),
        ]);
        let wide = Program::new(vec![
            OpSpec { accesses, semantics: OpSemantics::Elastic { window: w + 1 } },
            OpSpec::mono(vec![Access { kind: AccessKind::Write, reg: 0 }]),
        ]);
        let inter = pick_interleaving(&narrow, idx);
        let wide_ok = accepts(&wide, &inter, Synchronization::Polymorphic).accepted;
        let narrow_ok = accepts(&narrow, &inter, Synchronization::Polymorphic).accepted;
        prop_assert!(!wide_ok || narrow_ok, "window monotonicity violated");
    }

    /// The witness returned on acceptance is internally consistent:
    /// one point per critical step, non-decreasing within an operation.
    #[test]
    fn witnesses_are_well_formed(program in program_strategy(), idx in 0usize..100_000) {
        prop_assume!(program.total_events() <= 10);
        let inter = pick_interleaving(&program, idx);
        for sync in [Synchronization::Monomorphic, Synchronization::Polymorphic] {
            if let Ok(wit) = polytm_schedule::accept::serialization_witness(&program, &inter, sync) {
                prop_assert_eq!(wit.len(), program.procs());
                for (p, points) in wit.iter().enumerate() {
                    let steps = match sync {
                        Synchronization::Monomorphic => OpSpec {
                            accesses: program.ops[p].accesses.clone(),
                            semantics: OpSemantics::Monomorphic,
                        }
                        .critical_steps()
                        .len(),
                        _ => program.ops[p].critical_steps().len(),
                    };
                    prop_assert_eq!(points.len(), steps);
                    prop_assert!(points.windows(2).all(|w| w[0] <= w[1]));
                }
            }
        }
    }
}
