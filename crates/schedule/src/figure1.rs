//! The paper's Figure 1: the schedule "accepted by lock-based and
//! polymorphic transactions but not by monomorphic transactions".
//!
//! Process p1 runs the sorted-linked-list `contains` operation
//! `r(x), r(y), r(z)` under the `weak` (elastic) semantics
//! `r(x),r(y) ↦ γ1` and `r(y),r(z) ↦ γ2`. Processes p2 and p3 run
//! default-semantics writer transactions `w(x)` and `w(z)`. The
//! interleaving overwrites `x` *behind* the traversal and `z` *ahead* of
//! it:
//!
//! ```text
//!      p1            p2            p3
//!  start(weak)
//!     r(x)
//!               start(def)
//!                  w(x)
//!                 commit
//!     r(y)
//!                             start(def)
//!                                w(z)
//!                               commit
//!     r(z)
//!    commit
//! ```
//!
//! * **Monomorphic** rejects: p1's single critical step needs a point
//!   where the initial `x` and the new `z` coexist — the initial `x` dies
//!   at p2's commit, the new `z` is born at p3's later commit.
//! * **Polymorphic** accepts: γ1 = {x, y} serializes before p2's commit;
//!   γ2 = {y, z} serializes after p3's commit.
//! * **Lock-based** accepts: p1 locks hand-over-hand, releasing `x`
//!   before p2 needs it and acquiring `z` after p3 released it.

use crate::interleave::Interleaving;
use crate::locking::{LockEvent, LockSchedule};
use crate::model::{r, w, OpSpec, Program};

/// Register indices used by the figure.
pub const X: usize = 0;
/// Register `y`.
pub const Y: usize = 1;
/// Register `z`.
pub const Z: usize = 2;

/// The three operations of Figure 1: p1 = weak `contains` traversal,
/// p2 = `w(x)`, p3 = `w(z)` (both default semantics).
pub fn figure1_program() -> Program {
    Program::new(vec![
        OpSpec::weak(vec![r(X), r(Y), r(Z)]),
        OpSpec::mono(vec![w(X)]),
        OpSpec::mono(vec![w(Z)]),
    ])
}

/// The figure's interleaving:
/// `r(x); w(x); commit2; r(y); w(z); commit3; r(z); commit1`.
pub fn figure1_interleaving() -> Interleaving {
    let program = figure1_program();
    Interleaving::new(&program, vec![0, 1, 1, 0, 2, 2, 0, 0])
        .expect("the Figure 1 interleaving is well-formed")
}

/// The lock-based half of Figure 1: p1 traverses hand-over-hand
/// (deliberately *not* two-phase), p2/p3 encircle their writes. Its
/// access subsequence equals [`figure1_interleaving`]'s.
pub fn figure1_lock_schedule() -> LockSchedule {
    use LockEvent::*;
    LockSchedule {
        events: vec![
            (0, Lock(X)),
            (0, Read(X)),
            (0, Lock(Y)),
            (0, Unlock(X)),
            (1, Lock(X)),
            (1, Write(X)),
            (1, Unlock(X)),
            (0, Read(Y)),
            (2, Lock(Z)),
            (2, Write(Z)),
            (2, Unlock(Z)),
            (0, Lock(Z)),
            (0, Unlock(Y)),
            (0, Read(Z)),
            (0, Unlock(Z)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accept::{accepts, Synchronization};
    use crate::locking::LockEvent;

    #[test]
    fn figure1_is_rejected_by_monomorphic() {
        let p = figure1_program();
        let i = figure1_interleaving();
        let out = accepts(&p, &i, Synchronization::Monomorphic);
        assert!(!out.accepted, "monomorphic must reject Figure 1");
        assert_eq!(out.failing_proc, Some(0), "p1's traversal cannot be serialized");
    }

    #[test]
    fn figure1_is_accepted_by_polymorphic() {
        let p = figure1_program();
        let i = figure1_interleaving();
        assert!(accepts(&p, &i, Synchronization::Polymorphic).accepted);
    }

    #[test]
    fn figure1_is_accepted_by_lock_based() {
        let p = figure1_program();
        let i = figure1_interleaving();
        assert!(accepts(&p, &i, Synchronization::LockBased).accepted);
    }

    #[test]
    fn figure1_lock_schedule_is_executable() {
        assert_eq!(figure1_lock_schedule().validate(), Ok(()));
    }

    #[test]
    fn figure1_lock_schedule_is_not_two_phase() {
        // The concurrency gain comes precisely from breaking two-phase
        // locking: hand-over-hand releases x before acquiring z.
        assert!(!figure1_lock_schedule().is_two_phase());
    }

    #[test]
    fn lock_schedule_access_order_matches_transactional_interleaving() {
        let p = figure1_program();
        let i = figure1_interleaving();
        let lock_accesses = figure1_lock_schedule().access_order();
        // Project the transactional interleaving to its accesses.
        let tx_accesses: Vec<(usize, LockEvent)> = i
            .slots(&p)
            .into_iter()
            .filter_map(|s| match s {
                crate::interleave::Slot::Access(q, k) => {
                    let a = p.ops[q].accesses[k];
                    Some((
                        q,
                        match a.kind {
                            crate::model::AccessKind::Read => LockEvent::Read(a.reg),
                            crate::model::AccessKind::Write => LockEvent::Write(a.reg),
                        },
                    ))
                }
                crate::interleave::Slot::Commit(_) => None,
            })
            .collect();
        assert_eq!(lock_accesses, tx_accesses);
    }

    #[test]
    fn render_looks_like_the_paper() {
        let p = figure1_program();
        let txt = figure1_interleaving().render(&p);
        assert!(txt.contains("r(x)"));
        assert!(txt.contains("w(z)"));
        // p1's column comes first; check the traversal appears in order.
        let rx = txt.find("r(x)").unwrap();
        let ry = txt.find("r(y)").unwrap();
        let rz = txt.find("r(z)").unwrap();
        assert!(rx < ry && ry < rz);
    }
}
