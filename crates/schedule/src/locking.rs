//! Explicit lock-based schedules and their discipline.
//!
//! The paper's lock-based operations extend the access sequence with
//! `lock(x)` / `unlock(x)` events. A lock-based schedule is *executable*
//! when it is well-formed (every `lock(x)` has a matching later
//! `unlock(x)` by the same process), respects mutual exclusion (no
//! process locks a register currently held by another), and every access
//! to a register happens while its lock is held.
//!
//! The left half of the paper's Figure 1 is such a schedule; it is
//! encoded in [`crate::figure1::figure1_lock_schedule`].

use crate::model::{ProcId, Reg};

/// One event of a lock-based schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockEvent {
    /// Acquire the register's lock.
    Lock(Reg),
    /// Release the register's lock.
    Unlock(Reg),
    /// Read the register (lock must be held).
    Read(Reg),
    /// Write the register (lock must be held).
    Write(Reg),
}

/// A total order of lock-based events across processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSchedule {
    /// The events, in schedule order.
    pub events: Vec<(ProcId, LockEvent)>,
}

/// Why a lock schedule is not executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockViolation {
    /// Two processes hold the same register's lock at once.
    MutualExclusion {
        /// The contended register.
        reg: Reg,
        /// The process that currently holds the lock.
        holder: ProcId,
        /// The process trying to acquire it.
        claimant: ProcId,
    },
    /// A process accessed a register without holding its lock.
    AccessWithoutLock {
        /// Offending process.
        proc: ProcId,
        /// Register accessed.
        reg: Reg,
    },
    /// A process unlocked a register it does not hold.
    UnlockNotHeld {
        /// Offending process.
        proc: ProcId,
        /// Register unlocked.
        reg: Reg,
    },
    /// A lock is still held at the end of the schedule (not well-formed:
    /// every `lock(x)` needs a following `unlock(x)`).
    DanglingLock {
        /// Offending process.
        proc: ProcId,
        /// Register still held.
        reg: Reg,
    },
    /// A process re-locked a register it already holds.
    Relock {
        /// Offending process.
        proc: ProcId,
        /// Register re-locked.
        reg: Reg,
    },
}

impl LockSchedule {
    /// Check well-formedness + mutual exclusion + access discipline.
    pub fn validate(&self) -> Result<(), LockViolation> {
        use std::collections::HashMap;
        // reg -> holder
        let mut held: HashMap<Reg, ProcId> = HashMap::new();
        for &(p, ev) in &self.events {
            match ev {
                LockEvent::Lock(g) => match held.get(&g) {
                    Some(&holder) if holder == p => {
                        return Err(LockViolation::Relock { proc: p, reg: g })
                    }
                    Some(&holder) => {
                        return Err(LockViolation::MutualExclusion { reg: g, holder, claimant: p })
                    }
                    None => {
                        held.insert(g, p);
                    }
                },
                LockEvent::Unlock(g) => {
                    if held.get(&g) != Some(&p) {
                        return Err(LockViolation::UnlockNotHeld { proc: p, reg: g });
                    }
                    held.remove(&g);
                }
                LockEvent::Read(g) | LockEvent::Write(g) => {
                    if held.get(&g) != Some(&p) {
                        return Err(LockViolation::AccessWithoutLock { proc: p, reg: g });
                    }
                }
            }
        }
        if let Some((&reg, &proc)) = held.iter().next() {
            return Err(LockViolation::DanglingLock { proc, reg });
        }
        Ok(())
    }

    /// The access subsequence (reads/writes only, in order) — used to
    /// compare a lock schedule with a transactional schedule over the
    /// same program.
    pub fn access_order(&self) -> Vec<(ProcId, LockEvent)> {
        self.events
            .iter()
            .copied()
            .filter(|(_, e)| matches!(e, LockEvent::Read(_) | LockEvent::Write(_)))
            .collect()
    }

    /// Is this schedule two-phase per process (no lock acquired after the
    /// first unlock)? Figure 1's hand-over-hand schedule is deliberately
    /// *not* two-phase for p1.
    pub fn is_two_phase(&self) -> bool {
        use std::collections::HashSet;
        let mut unlocked: HashSet<ProcId> = HashSet::new();
        for &(p, ev) in &self.events {
            match ev {
                LockEvent::Unlock(_) => {
                    unlocked.insert(p);
                }
                LockEvent::Lock(_) if unlocked.contains(&p) => return false,
                _ => {}
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockEvent::*;

    #[test]
    fn valid_schedule_passes() {
        let s = LockSchedule {
            events: vec![(0, Lock(0)), (0, Read(0)), (0, Write(0)), (0, Unlock(0))],
        };
        assert_eq!(s.validate(), Ok(()));
        assert!(s.is_two_phase());
    }

    #[test]
    fn mutual_exclusion_violation_detected() {
        let s = LockSchedule { events: vec![(0, Lock(0)), (1, Lock(0))] };
        assert_eq!(
            s.validate(),
            Err(LockViolation::MutualExclusion { reg: 0, holder: 0, claimant: 1 })
        );
    }

    #[test]
    fn access_without_lock_detected() {
        let s = LockSchedule { events: vec![(0, Read(3))] };
        assert_eq!(s.validate(), Err(LockViolation::AccessWithoutLock { proc: 0, reg: 3 }));
    }

    #[test]
    fn unlock_not_held_detected() {
        let s = LockSchedule { events: vec![(0, Unlock(1))] };
        assert_eq!(s.validate(), Err(LockViolation::UnlockNotHeld { proc: 0, reg: 1 }));
    }

    #[test]
    fn dangling_lock_detected() {
        let s = LockSchedule { events: vec![(2, Lock(1))] };
        assert_eq!(s.validate(), Err(LockViolation::DanglingLock { proc: 2, reg: 1 }));
    }

    #[test]
    fn relock_detected() {
        let s = LockSchedule { events: vec![(0, Lock(1)), (0, Lock(1))] };
        assert_eq!(s.validate(), Err(LockViolation::Relock { proc: 0, reg: 1 }));
    }

    #[test]
    fn hand_over_hand_is_not_two_phase() {
        let s = LockSchedule {
            events: vec![
                (0, Lock(0)),
                (0, Read(0)),
                (0, Lock(1)),
                (0, Unlock(0)),
                (0, Read(1)),
                (0, Lock(2)),
                (0, Unlock(1)),
                (0, Read(2)),
                (0, Unlock(2)),
            ],
        };
        assert_eq!(s.validate(), Ok(()));
        assert!(!s.is_two_phase());
    }

    #[test]
    fn access_order_strips_lock_events() {
        let s = LockSchedule {
            events: vec![
                (0, Lock(0)),
                (0, Read(0)),
                (1, Lock(1)),
                (1, Write(1)),
                (0, Unlock(0)),
                (1, Unlock(1)),
            ],
        };
        assert_eq!(s.access_order(), vec![(0, Read(0)), (1, Write(1))]);
    }
}
