//! # polytm-schedule — the SPAA'11 formal model, executable
//!
//! The paper evaluates transaction polymorphism *theoretically*: it
//! defines schedules, critical steps, histories, validity and acceptance,
//! then proves (Theorem 1) that lock-based synchronization enables
//! strictly higher concurrency than monomorphic transactions and
//! (Theorem 2) that polymorphic transactions do too, with Figure 1 as the
//! separating witness. This crate makes all of that machine-checkable:
//!
//! * [`model`] — registers, accesses, operations, and **semantics** as an
//!   assignment of accesses to critical steps (`r(x),r(y) ↦ γ1`, …);
//! * [`interleave`] — schedules as interleavings of operation events,
//!   plus bounded-exhaustive enumeration of all interleavings;
//! * [`accept`] — the acceptance checker: executes a schedule under
//!   single-version read semantics and decides whether the resulting
//!   history is *valid* (equivalent to a sequential history in which no
//!   two critical steps are concurrent);
//! * [`locking`] — explicit lock/unlock schedules and their
//!   well-formedness/mutual-exclusion discipline (the left half of the
//!   paper's Figure 1);
//! * [`figure1`] — the witness schedule itself, in both its transactional
//!   and lock-based forms;
//! * [`theorems`] — executable statements of Theorems 1 and 2: a
//!   separating witness plus a bounded-exhaustive inclusion check;
//! * [`mod@replay`] — a deterministic replayer that drives the *real*
//!   [`polytm`] STM through a schedule's exact interleaving and reports
//!   whether the implementation accepts it (no aborts).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accept;
pub mod figure1;
pub mod interleave;
pub mod locking;
pub mod model;
pub mod replay;
pub mod theorems;

pub use accept::{accepts, AcceptOutcome, Synchronization};
pub use figure1::{figure1_interleaving, figure1_lock_schedule, figure1_program};
pub use interleave::{enumerate_interleavings, Interleaving};
pub use model::{Access, AccessKind, OpSemantics, OpSpec, Program, Reg};
pub use replay::{replay, ReplayOutcome};
pub use theorems::{check_theorem1, check_theorem2, TheoremReport};
