//! Executable statements of the paper's theorems.
//!
//! Definition 1: `S1 ⇒ S2` ("S1 enables higher concurrency than S2") iff
//! some schedule is accepted by S1 but not by S2. *Strictly higher*
//! concurrency is `S1 ⇒ S2 ∧ ¬(S2 ⇒ S1)`.
//!
//! The positive half (`S1 ⇒ S2`) is constructive: Figure 1 is the
//! witness. The negative half (`¬(S2 ⇒ S1)`, i.e. every S2-accepted
//! schedule is S1-accepted) is universally quantified; we check it
//! exhaustively over a bounded universe of programs and all their
//! interleavings, which is the strongest machine-checkable evidence short
//! of the pencil-and-paper argument (finer critical steps only weaken the
//! constraint system — see `accept.rs`).

use crate::accept::{accepts, Synchronization};
use crate::figure1::{figure1_interleaving, figure1_program};
use crate::interleave::enumerate_interleavings;
use crate::model::{Access, AccessKind, OpSemantics, OpSpec, Program};

/// Outcome of checking one theorem.
#[derive(Debug, Clone)]
pub struct TheoremReport {
    /// "Theorem 1" / "Theorem 2".
    pub name: &'static str,
    /// The stronger synchronization S1.
    pub stronger: Synchronization,
    /// The weaker synchronization S2 (always Monomorphic here).
    pub weaker: Synchronization,
    /// Did the Figure 1 witness separate S1 from S2 (accepted by S1,
    /// rejected by S2)?
    pub witness_separates: bool,
    /// Number of (program, interleaving) pairs checked for the inclusion
    /// "S2-accepted ⊆ S1-accepted".
    pub inclusion_pairs_checked: usize,
    /// Number of inclusion violations found (must be 0).
    pub inclusion_violations: usize,
    /// Number of schedules in the universe accepted by S1 but not S2
    /// (witnesses of `S1 ⇒ S2` beyond Figure 1).
    pub extra_witnesses: usize,
    /// `witness_separates && inclusion_violations == 0`.
    pub holds: bool,
}

impl std::fmt::Display for TheoremReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {:?} enables strictly higher concurrency than {:?}: {}",
            self.name,
            self.stronger,
            self.weaker,
            if self.holds { "HOLDS" } else { "VIOLATED" }
        )?;
        writeln!(f, "  Figure 1 witness separates: {}", self.witness_separates)?;
        writeln!(
            f,
            "  inclusion {:?}-accepted ⊆ {:?}-accepted: {} pairs checked, {} violations",
            self.weaker, self.stronger, self.inclusion_pairs_checked, self.inclusion_violations
        )?;
        write!(f, "  additional separating witnesses found: {}", self.extra_witnesses)
    }
}

/// All access sequences of length `len` over `regs` registers.
fn access_seqs(len: usize, regs: usize) -> Vec<Vec<Access>> {
    let alphabet: Vec<Access> = (0..regs)
        .flat_map(|g| {
            [Access { kind: AccessKind::Read, reg: g }, Access { kind: AccessKind::Write, reg: g }]
        })
        .collect();
    let mut seqs: Vec<Vec<Access>> = vec![Vec::new()];
    for _ in 0..len {
        seqs = seqs
            .into_iter()
            .flat_map(|s| {
                alphabet.iter().map(move |&a| {
                    let mut t = s.clone();
                    t.push(a);
                    t
                })
            })
            .collect();
    }
    seqs
}

/// The bounded program universe for the inclusion checks: two processes,
/// p0 with every access sequence of length 1..=max_len over `regs`
/// registers under both `def` and `weak` semantics, p1 a single-access
/// writer/reader.
pub fn bounded_universe(max_len: usize, regs: usize) -> Vec<Program> {
    let mut out = Vec::new();
    let singles = access_seqs(1, regs);
    for len in 1..=max_len {
        for seq in access_seqs(len, regs) {
            for sem in [OpSemantics::Monomorphic, OpSemantics::Elastic { window: 2 }] {
                for single in &singles {
                    out.push(Program::new(vec![
                        OpSpec { accesses: seq.clone(), semantics: sem.clone() },
                        OpSpec::mono(single.clone()),
                    ]));
                }
            }
        }
    }
    out
}

fn check_against(stronger: Synchronization, name: &'static str) -> TheoremReport {
    let weaker = Synchronization::Monomorphic;

    // Positive half: Figure 1 separates.
    let fp = figure1_program();
    let fi = figure1_interleaving();
    let witness_separates =
        accepts(&fp, &fi, stronger).accepted && !accepts(&fp, &fi, weaker).accepted;

    // Negative half: exhaustive inclusion over the bounded universe.
    let mut pairs = 0usize;
    let mut violations = 0usize;
    let mut extra = 0usize;
    for program in bounded_universe(3, 2) {
        for inter in enumerate_interleavings(&program) {
            pairs += 1;
            let weak_ok = accepts(&program, &inter, weaker).accepted;
            let strong_ok = accepts(&program, &inter, stronger).accepted;
            if weak_ok && !strong_ok {
                violations += 1;
            }
            if strong_ok && !weak_ok {
                extra += 1;
            }
        }
    }
    // Also sweep every interleaving of the Figure 1 program itself.
    for inter in enumerate_interleavings(&fp) {
        pairs += 1;
        let weak_ok = accepts(&fp, &inter, weaker).accepted;
        let strong_ok = accepts(&fp, &inter, stronger).accepted;
        if weak_ok && !strong_ok {
            violations += 1;
        }
        if strong_ok && !weak_ok {
            extra += 1;
        }
    }

    TheoremReport {
        name,
        stronger,
        weaker,
        witness_separates,
        inclusion_pairs_checked: pairs,
        inclusion_violations: violations,
        extra_witnesses: extra,
        holds: witness_separates && violations == 0,
    }
}

/// Theorem 1: lock-based synchronization enables strictly higher
/// concurrency than monomorphic synchronization.
pub fn check_theorem1() -> TheoremReport {
    check_against(Synchronization::LockBased, "Theorem 1")
}

/// Theorem 2: polymorphic synchronization enables strictly higher
/// concurrency than monomorphic synchronization.
pub fn check_theorem2() -> TheoremReport {
    check_against(Synchronization::Polymorphic, "Theorem 2")
}

/// A sanity lemma the paper relies on implicitly: the polymorphic checker
/// restricted to all-`def` programs coincides with the monomorphic
/// checker. Returns the number of (program, interleaving) pairs checked.
///
/// # Panics
/// Panics on the first disagreement.
pub fn check_all_def_coincides() -> usize {
    let mut pairs = 0;
    for seq in access_seqs(2, 2) {
        for single in access_seqs(1, 2) {
            let program =
                Program::new(vec![OpSpec::mono(seq.clone()), OpSpec::mono(single.clone())]);
            for inter in enumerate_interleavings(&program) {
                pairs += 1;
                let m = accepts(&program, &inter, Synchronization::Monomorphic).accepted;
                let p = accepts(&program, &inter, Synchronization::Polymorphic).accepted;
                assert_eq!(m, p, "all-def program diverged:\n{}", inter.render(&program));
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_holds() {
        let report = check_theorem1();
        assert!(report.witness_separates, "{report}");
        assert_eq!(report.inclusion_violations, 0, "{report}");
        assert!(report.holds, "{report}");
        assert!(report.inclusion_pairs_checked > 9_000);
    }

    #[test]
    fn theorem2_holds() {
        let report = check_theorem2();
        assert!(report.witness_separates, "{report}");
        assert_eq!(report.inclusion_violations, 0, "{report}");
        assert!(report.holds, "{report}");
        // Polymorphism gains something over mono somewhere in the
        // universe beyond Figure 1 (elastic ops exist in the universe).
        assert!(report.extra_witnesses > 0, "{report}");
    }

    #[test]
    fn all_def_polymorphic_equals_monomorphic() {
        let pairs = check_all_def_coincides();
        assert!(pairs > 500);
    }

    #[test]
    fn universe_is_nontrivial() {
        let u = bounded_universe(2, 2);
        // lengths 1,2 over 2 regs: (4 + 16) seqs × 2 semantics × 4 singles
        assert_eq!(u.len(), (4 + 16) * 2 * 4);
    }
}
