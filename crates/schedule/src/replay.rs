//! Replaying a schedule through the *real* STM.
//!
//! The analytic checker in [`crate::accept`] decides what an ideal
//! synchronization can accept. This module drives the actual
//! [`polytm`] implementation through a schedule's exact interleaving —
//! one thread per process, each event released by a coordinator — and
//! reports whether the implementation executed it without aborting.
//!
//! A real TM may be *more conservative* than the ideal checker (it may
//! abort schedules that are analytically acceptable: e.g. TL2-style
//! validation rejects some serializable interleavings), but it must never
//! be more permissive. The integration tests assert exactly that
//! relation, and that on Figure 1 the implementation matches the paper:
//! elastic (weak) commits, opaque (def) aborts.

use std::sync::mpsc::{channel, Sender};

use polytm::{Semantics, Stm, StmConfig, TxParams};

use crate::accept::Synchronization;
use crate::interleave::{Interleaving, Slot};
use crate::model::{AccessKind, OpSemantics, Program};

/// Result of replaying one schedule against the real STM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// True when every operation committed on its first attempt, i.e. the
    /// implementation *accepted* the schedule.
    pub accepted: bool,
    /// Per-process: did its transaction commit (on the first attempt)?
    pub committed: Vec<bool>,
    /// First failure, if any: (process, abort description).
    pub first_failure: Option<(usize, String)>,
    /// Values returned by each read access (`None` for writes and for
    /// accesses never reached). `Some(0)` is the initial value;
    /// `Some(p + 1)` is the value written by process `p`.
    pub read_values: Vec<Vec<Option<u64>>>,
}

enum Cmd {
    Access(usize),
    Commit,
    Bail,
}

enum Msg {
    AccessOk(usize, Option<u64>),
    AccessFailed(usize, String),
    Done(usize, bool),
}

fn semantics_for(sync: Synchronization, sem: &OpSemantics) -> Result<Semantics, String> {
    match sync {
        Synchronization::Monomorphic => Ok(Semantics::Opaque),
        Synchronization::Polymorphic => match sem {
            OpSemantics::Monomorphic => Ok(Semantics::Opaque),
            OpSemantics::Elastic { window } => Ok(Semantics::Elastic { window: *window }),
            OpSemantics::Explicit(_) => {
                Err("explicit critical-step semantics cannot be replayed on the STM".into())
            }
        },
        Synchronization::LockBased => {
            Err("lock-based schedules are replayed via polytm-locks, not the STM".into())
        }
    }
}

/// Replay `inter` on a fresh [`Stm`], mapping each operation to a
/// transaction under `sync`. See the module docs.
///
/// # Errors
/// Returns `Err` when the synchronization/semantics combination cannot be
/// expressed on the STM (lock-based, explicit critical steps).
pub fn replay(
    program: &Program,
    inter: &Interleaving,
    sync: Synchronization,
) -> Result<ReplayOutcome, String> {
    let procs = program.procs();
    let mut sems = Vec::with_capacity(procs);
    for op in &program.ops {
        sems.push(semantics_for(sync, &op.semantics)?);
    }

    let stm = Stm::with_config(StmConfig {
        irrevocable_fallback_after: None,
        arbiter: polytm::ConflictArbiter::Suicide(polytm::Suicide),
        ..StmConfig::default()
    });
    let max_reg = program
        .ops
        .iter()
        .flat_map(|o| o.accesses.iter().map(|a| a.reg))
        .max()
        .map_or(0, |m| m + 1);
    let regs: Vec<_> = (0..max_reg).map(|_| stm.new_tvar(0u64)).collect();

    let slots = inter.slots(program);
    let mut committed = vec![false; procs];
    let mut read_values: Vec<Vec<Option<u64>>> =
        program.ops.iter().map(|o| vec![None; o.accesses.len()]).collect();
    let mut first_failure: Option<(usize, String)> = None;

    std::thread::scope(|scope| {
        let (msg_tx, msg_rx) = channel::<Msg>();
        let mut cmds: Vec<Sender<Cmd>> = Vec::with_capacity(procs);
        #[allow(clippy::needless_range_loop)] // parallel towers/arrays indexed together
        for p in 0..procs {
            let (cmd_tx, cmd_rx) = channel::<Cmd>();
            cmds.push(cmd_tx);
            let msg_tx = msg_tx.clone();
            let stm = &stm;
            let regs = &regs;
            let op = &program.ops[p];
            let sem = sems[p];
            scope.spawn(move || {
                let mut attempt = 0u32;
                let res = stm.try_run(TxParams::new(sem), |t| {
                    attempt += 1;
                    if attempt > 1 {
                        // The schedule prescribes exactly one attempt; a
                        // retry means the implementation rejected it.
                        return t.cancel();
                    }
                    loop {
                        match cmd_rx.recv() {
                            Ok(Cmd::Access(k)) => {
                                let a = op.accesses[k];
                                let outcome = match a.kind {
                                    AccessKind::Read => regs[a.reg].read(t).map(Some),
                                    AccessKind::Write => {
                                        regs[a.reg].write(t, (p + 1) as u64).map(|()| None)
                                    }
                                };
                                match outcome {
                                    Ok(v) => {
                                        let _ = msg_tx.send(Msg::AccessOk(p, v));
                                    }
                                    Err(e) => {
                                        let _ = msg_tx.send(Msg::AccessFailed(p, e.to_string()));
                                        return Err(e);
                                    }
                                }
                            }
                            Ok(Cmd::Commit) => return Ok(()),
                            Ok(Cmd::Bail) | Err(_) => return t.cancel(),
                        }
                    }
                });
                let _ = msg_tx.send(Msg::Done(p, res.is_ok()));
            });
        }
        drop(msg_tx);

        let mut done = vec![false; procs];
        let mut failed = false;
        for slot in slots {
            if failed {
                break;
            }
            match slot {
                Slot::Access(p, k) => {
                    if cmds[p].send(Cmd::Access(k)).is_err() {
                        break;
                    }
                    match msg_rx.recv() {
                        Ok(Msg::AccessOk(q, v)) => {
                            debug_assert_eq!(q, p);
                            read_values[p][k] = v;
                        }
                        Ok(Msg::AccessFailed(q, why)) => {
                            debug_assert_eq!(q, p);
                            if first_failure.is_none() {
                                first_failure = Some((p, why));
                            }
                            failed = true;
                            // The failing proc's transaction unwinds and
                            // sends Done(p, false).
                            if let Ok(Msg::Done(q2, ok)) = msg_rx.recv() {
                                debug_assert_eq!(q2, p);
                                debug_assert!(!ok);
                                done[p] = true;
                            }
                        }
                        Ok(Msg::Done(q, ok)) => {
                            // Unexpected early completion (defensive).
                            done[q] = true;
                            committed[q] = ok;
                            failed = true;
                        }
                        Err(_) => failed = true,
                    }
                }
                Slot::Commit(p) => {
                    if cmds[p].send(Cmd::Commit).is_err() {
                        break;
                    }
                    match msg_rx.recv() {
                        Ok(Msg::Done(q, ok)) => {
                            debug_assert_eq!(q, p);
                            done[p] = true;
                            committed[p] = ok;
                            if !ok {
                                if first_failure.is_none() {
                                    first_failure =
                                        Some((p, "commit-time validation failed".into()));
                                }
                                failed = true;
                            }
                        }
                        Ok(Msg::AccessFailed(q, why)) => {
                            if first_failure.is_none() {
                                first_failure = Some((q, why));
                            }
                            failed = true;
                        }
                        _ => failed = true,
                    }
                }
            }
        }
        // Unwind any still-running transactions.
        for (p, cmd) in cmds.iter().enumerate() {
            if !done[p] {
                let _ = cmd.send(Cmd::Bail);
            }
        }
        drop(cmds);
        // Drain remaining Done messages so the scope can join.
        while let Ok(msg) = msg_rx.recv() {
            if let Msg::Done(p, ok) = msg {
                if !done[p] {
                    done[p] = true;
                    committed[p] = ok;
                }
            }
        }
    });

    let accepted = committed.iter().all(|&c| c) && first_failure.is_none();
    Ok(ReplayOutcome { accepted, committed, first_failure, read_values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::{figure1_interleaving, figure1_program};
    use crate::interleave::Interleaving;
    use crate::model::{r, w, OpSpec, Program};

    #[test]
    fn serial_schedule_replays_cleanly_under_both_syncs() {
        let p = Program::new(vec![OpSpec::mono(vec![r(0), w(0)]), OpSpec::weak(vec![r(0), r(1)])]);
        let s = Interleaving::serial(&p);
        for sync in [Synchronization::Monomorphic, Synchronization::Polymorphic] {
            let out = replay(&p, &s, sync).unwrap();
            assert!(out.accepted, "{sync:?}: {:?}", out.first_failure);
            assert!(out.committed.iter().all(|&c| c));
        }
    }

    #[test]
    fn replay_reports_read_values() {
        // p0 writes 1 into reg0 and commits; p1 then reads it.
        let p = Program::new(vec![OpSpec::mono(vec![w(0)]), OpSpec::mono(vec![r(0)])]);
        let s = Interleaving::serial(&p);
        let out = replay(&p, &s, Synchronization::Monomorphic).unwrap();
        assert!(out.accepted);
        assert_eq!(out.read_values[1][0], Some(1), "p1 must read p0's value (p0 id + 1)");
    }

    #[test]
    fn figure1_replay_matches_the_paper() {
        let p = figure1_program();
        let i = figure1_interleaving();
        // Polymorphic: the weak traversal tolerates the overwrites.
        let poly = replay(&p, &i, Synchronization::Polymorphic).unwrap();
        assert!(poly.accepted, "polymorphic STM must accept Figure 1: {:?}", poly.first_failure);
        // p1 read the *initial* x (before p2's overwrite) and p3's z.
        assert_eq!(poly.read_values[0], vec![Some(0), Some(0), Some(3)]);

        // Monomorphic: the opaque traversal must abort.
        let mono = replay(&p, &i, Synchronization::Monomorphic).unwrap();
        assert!(!mono.accepted, "monomorphic STM must reject Figure 1");
        let (failing, _) = mono.first_failure.clone().expect("a failure must be recorded");
        assert_eq!(failing, 0, "p1's traversal is the victim");
    }

    #[test]
    fn lock_based_replay_is_refused_here() {
        let p = figure1_program();
        let i = figure1_interleaving();
        assert!(replay(&p, &i, Synchronization::LockBased).is_err());
    }

    #[test]
    fn explicit_semantics_cannot_replay() {
        let p = Program::new(vec![OpSpec {
            accesses: vec![r(0)],
            semantics: crate::model::OpSemantics::Explicit(vec![vec![0]]),
        }]);
        let s = Interleaving::serial(&p);
        assert!(replay(&p, &s, Synchronization::Polymorphic).is_err());
    }
}
