//! The paper's objects: shared registers, accesses, operations, and
//! semantics as assignments of accesses to critical steps.

/// A shared register (the paper's `x`, `y`, `z`). Registers are small
//  dense indices so schedules can be enumerated.
pub type Reg = usize;

/// Identifies a process/operation in a [`Program`].
pub type ProcId = usize;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The paper's `r(x)`.
    Read,
    /// The paper's `w(x, v)`.
    Write,
}

/// One shared-register access inside an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Read or write.
    pub kind: AccessKind,
    /// The register accessed.
    pub reg: Reg,
}

/// `r(x)` shorthand.
pub const fn r(reg: Reg) -> Access {
    Access { kind: AccessKind::Read, reg }
}

/// `w(x)` shorthand.
pub const fn w(reg: Reg) -> Access {
    Access { kind: AccessKind::Write, reg }
}

/// The paper's *semantics of an operation*: the assignment of its
/// accesses to critical steps γ.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OpSemantics {
    /// One critical step spanning every access — what every transaction
    /// gets in a *monomorphic* TM (the paper's `def`).
    Monomorphic,
    /// The paper's `weak`: overlapping sliding windows of `window`
    /// consecutive accesses over the read prefix; the first write and
    /// everything after it (plus the preceding `window - 1` reads) form
    /// the final critical step, mirroring ε-STM's freeze-on-write.
    Elastic {
        /// Window width (the paper's linked-list semantics is 2).
        window: usize,
    },
    /// Explicit critical steps: each inner vec lists access indices.
    /// This is the paper's fully general "assignment of accesses to
    /// critical steps".
    Explicit(Vec<Vec<usize>>),
}

/// An operation π: a sequence of accesses plus its semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpSpec {
    /// The access sequence.
    pub accesses: Vec<Access>,
    /// Assignment of accesses to critical steps.
    pub semantics: OpSemantics,
}

impl OpSpec {
    /// Monomorphic operation over the given accesses.
    pub fn mono(accesses: Vec<Access>) -> Self {
        Self { accesses, semantics: OpSemantics::Monomorphic }
    }

    /// Elastic (`weak`) operation with the canonical window of 2.
    pub fn weak(accesses: Vec<Access>) -> Self {
        Self { accesses, semantics: OpSemantics::Elastic { window: 2 } }
    }

    /// Index of the first write, if any.
    pub fn first_write(&self) -> Option<usize> {
        self.accesses.iter().position(|a| a.kind == AccessKind::Write)
    }

    /// Materialize the critical steps γ1..γk (each a sorted list of
    /// access indices), in operation order.
    ///
    /// For [`OpSemantics::Elastic`], windows slide over the accesses
    /// before the first write; the final step contains the last
    /// `window - 1` pre-write accesses and every access from the first
    /// write on.
    pub fn critical_steps(&self) -> Vec<Vec<usize>> {
        let n = self.accesses.len();
        if n == 0 {
            return Vec::new();
        }
        match &self.semantics {
            OpSemantics::Monomorphic => vec![(0..n).collect()],
            OpSemantics::Explicit(steps) => steps.clone(),
            OpSemantics::Elastic { window } => {
                let w = (*window).max(1);
                let cut_end = self.first_write().unwrap_or(n);
                let mut steps: Vec<Vec<usize>> = Vec::new();
                if cut_end >= w {
                    for i in 0..=(cut_end - w) {
                        steps.push((i..i + w).collect());
                    }
                }
                if cut_end < n {
                    // Final (frozen) step: trailing window of the read
                    // prefix plus the whole write suffix.
                    let lo = cut_end.saturating_sub(w - 1);
                    steps.push((lo..n).collect());
                } else if cut_end < w {
                    // Fewer accesses than the window: a single step.
                    steps.push((0..n).collect());
                }
                steps
            }
        }
    }

    /// True when every access index appears in at least one critical step
    /// and steps are non-empty — the well-formedness requirement on a
    /// semantics assignment.
    pub fn semantics_is_well_formed(&self) -> bool {
        let steps = self.critical_steps();
        if self.accesses.is_empty() {
            return steps.is_empty();
        }
        if steps.iter().any(|s| s.is_empty()) {
            return false;
        }
        let mut covered = vec![false; self.accesses.len()];
        for s in &steps {
            for &i in s {
                if i >= self.accesses.len() {
                    return false;
                }
                covered[i] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }
}

/// A concurrent program: one operation per process. (Multiple operations
/// per process are modelled as extra processes ordered by the
/// interleaving, which is fully general for acceptance checking.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// `ops[p]` is the operation of process `p`.
    pub ops: Vec<OpSpec>,
}

impl Program {
    /// Build a program.
    pub fn new(ops: Vec<OpSpec>) -> Self {
        Self { ops }
    }

    /// Number of processes.
    pub fn procs(&self) -> usize {
        self.ops.len()
    }

    /// Total number of events (accesses + one commit per op) in any
    /// interleaving of this program.
    pub fn total_events(&self) -> usize {
        self.ops.iter().map(|o| o.accesses.len() + 1).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorthands() {
        assert_eq!(r(3), Access { kind: AccessKind::Read, reg: 3 });
        assert_eq!(w(1), Access { kind: AccessKind::Write, reg: 1 });
    }

    #[test]
    fn mono_semantics_is_one_step() {
        let op = OpSpec::mono(vec![r(0), r(1), w(2)]);
        assert_eq!(op.critical_steps(), vec![vec![0, 1, 2]]);
        assert!(op.semantics_is_well_formed());
    }

    #[test]
    fn weak_semantics_matches_paper_example() {
        // The paper: contains = r(x), r(y), r(z) with γ1 = {r(x), r(y)}
        // and γ2 = {r(y), r(z)}.
        let op = OpSpec::weak(vec![r(0), r(1), r(2)]);
        assert_eq!(op.critical_steps(), vec![vec![0, 1], vec![1, 2]]);
        assert!(op.semantics_is_well_formed());
    }

    #[test]
    fn weak_semantics_with_write_freezes_suffix() {
        // r(a), r(b), r(c), w(d), r(e): windows over the read prefix, then
        // the final step {r(b)? no: last (w-1)=1 read, i.e. r(c)} ∪ suffix.
        let op = OpSpec::weak(vec![r(0), r(1), r(2), w(3), r(4)]);
        assert_eq!(op.critical_steps(), vec![vec![0, 1], vec![1, 2], vec![2, 3, 4]]);
        assert!(op.semantics_is_well_formed());
    }

    #[test]
    fn weak_write_first_is_single_step() {
        let op = OpSpec::weak(vec![w(0), r(1)]);
        assert_eq!(op.critical_steps(), vec![vec![0, 1]]);
    }

    #[test]
    fn weak_short_op_is_single_step() {
        let op = OpSpec::weak(vec![r(0)]);
        assert_eq!(op.critical_steps(), vec![vec![0]]);
        let op2 = OpSpec::weak(vec![r(0), r(1)]);
        assert_eq!(op2.critical_steps(), vec![vec![0, 1]]);
    }

    #[test]
    fn window_one_gives_singletons() {
        let op = OpSpec {
            accesses: vec![r(0), r(1), r(2)],
            semantics: OpSemantics::Elastic { window: 1 },
        };
        assert_eq!(op.critical_steps(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn explicit_semantics_pass_through_and_validate() {
        let good = OpSpec {
            accesses: vec![r(0), r(1), r(2)],
            semantics: OpSemantics::Explicit(vec![vec![0, 1], vec![1, 2]]),
        };
        assert!(good.semantics_is_well_formed());
        let uncovered = OpSpec {
            accesses: vec![r(0), r(1), r(2)],
            semantics: OpSemantics::Explicit(vec![vec![0, 1]]),
        };
        assert!(!uncovered.semantics_is_well_formed());
        let out_of_range =
            OpSpec { accesses: vec![r(0)], semantics: OpSemantics::Explicit(vec![vec![0, 5]]) };
        assert!(!out_of_range.semantics_is_well_formed());
    }

    #[test]
    fn program_counts() {
        let p = Program::new(vec![
            OpSpec::weak(vec![r(0), r(1), r(2)]),
            OpSpec::mono(vec![w(0)]),
            OpSpec::mono(vec![w(2)]),
        ]);
        assert_eq!(p.procs(), 3);
        assert_eq!(p.total_events(), 3 + 1 + 1 + 3);
    }
}
