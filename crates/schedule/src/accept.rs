//! The acceptance checker: "a schedule is accepted by synchronization S
//! if its execution results in a valid history".
//!
//! ## Execution model
//!
//! Registers are single-version (the paper's shared registers "supporting
//! atomic reads/writes"): a write becomes visible when its operation
//! *commits*, and a read returns the latest value committed before it
//! (or the operation's own pending write).
//!
//! ## Validity
//!
//! A history is valid when it is equivalent to a *sequential* history —
//! one in which no two critical steps are concurrent. Equivalently: every
//! critical step γ can be assigned an atomic *point* such that
//!
//! 1. points of one operation's steps are ordered by program order,
//! 2. each point lies within the operation's span (start..commit),
//! 3. every read in γ holds its returned value at γ's point,
//! 4. a step containing writes sits exactly at the commit (writes are
//!    published at commit in the single-version model), and
//! 5. only the final critical step may contain writes.
//!
//! Feasibility of such a point assignment reduces to a greedy scan over
//! value-availability intervals, computed in "gap coordinates": gap `i`
//! denotes a moment just before event `i` of the interleaving.
//!
//! ## Synchronizations
//!
//! * [`Synchronization::Monomorphic`] — every operation's semantics is
//!   coerced to a single critical step (the paper: "all transactions
//!   execute the same safest semantics").
//! * [`Synchronization::Polymorphic`] — the declared semantics is used.
//! * [`Synchronization::LockBased`] — the declared semantics is used;
//!   fine-grained per-access locking can realize any interleaving of
//!   atomic accesses (see [`crate::locking`] for explicit lock schedules
//!   and their discipline), so acceptance coincides with the validity of
//!   the intended semantics. This mirrors the paper's observation that
//!   locks, unlike transactions, are not forced into one open-close
//!   block.

use crate::interleave::{Interleaving, Slot};
use crate::model::{AccessKind, OpSemantics, Program};

/// The synchronization technique executing the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Synchronization {
    /// Fine-grained lock-based synchronization.
    LockBased,
    /// Monomorphic transactions (every transaction runs `def`).
    Monomorphic,
    /// Polymorphic transactions (each transaction runs its declared
    /// semantics).
    Polymorphic,
}

/// Result of an acceptance check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptOutcome {
    /// Whether the schedule is accepted.
    pub accepted: bool,
    /// Process whose operation could not be serialized, if any.
    pub failing_proc: Option<usize>,
    /// Human-readable explanation.
    pub reason: String,
}

impl AcceptOutcome {
    fn ok() -> Self {
        Self { accepted: true, failing_proc: None, reason: "valid history".into() }
    }

    fn fail(proc: usize, reason: String) -> Self {
        Self { accepted: false, failing_proc: Some(proc), reason }
    }
}

/// The value a read returned in the executed history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    /// Initial register value.
    Initial,
    /// Value committed by the given process's operation.
    Committed(usize),
    /// The operation's own buffered write.
    Own,
}

/// A constructive witness of validity: for every operation, the gap
/// coordinate assigned to each of its critical steps (non-decreasing per
/// operation, each within the step's availability interval). Exhibiting
/// these points *is* exhibiting the equivalent sequential history.
pub type SerializationWitness = Vec<Vec<usize>>;

/// Like [`accepts`], but on acceptance also returns the serialization
/// points that witness the equivalent sequential history.
pub fn serialization_witness(
    program: &Program,
    inter: &Interleaving,
    sync: Synchronization,
) -> Result<SerializationWitness, AcceptOutcome> {
    let mut witness = Vec::with_capacity(program.procs());
    let out = accepts_impl(program, inter, sync, Some(&mut witness));
    if out.accepted {
        Ok(witness)
    } else {
        Err(out)
    }
}

/// Does the given synchronization accept this schedule (program +
/// interleaving)? See the module docs for the model.
///
/// ```
/// use polytm_schedule::{accepts, figure1_interleaving, figure1_program, Synchronization};
///
/// let program = figure1_program();
/// let schedule = figure1_interleaving();
/// assert!(accepts(&program, &schedule, Synchronization::Polymorphic).accepted);
/// assert!(!accepts(&program, &schedule, Synchronization::Monomorphic).accepted);
/// ```
pub fn accepts(program: &Program, inter: &Interleaving, sync: Synchronization) -> AcceptOutcome {
    accepts_impl(program, inter, sync, None)
}

fn accepts_impl(
    program: &Program,
    inter: &Interleaving,
    sync: Synchronization,
    mut witness: Option<&mut SerializationWitness>,
) -> AcceptOutcome {
    let slots = inter.slots(program);
    let n_events = slots.len();
    let procs = program.procs();

    // Event positions.
    let mut commit_pos = vec![usize::MAX; procs];
    let mut first_access_pos = vec![usize::MAX; procs];
    let mut access_pos: Vec<Vec<usize>> =
        program.ops.iter().map(|o| vec![usize::MAX; o.accesses.len()]).collect();
    for (pos, slot) in slots.iter().enumerate() {
        match *slot {
            Slot::Access(p, k) => {
                access_pos[p][k] = pos;
                if first_access_pos[p] == usize::MAX {
                    first_access_pos[p] = pos;
                }
            }
            Slot::Commit(p) => commit_pos[p] = pos,
        }
    }

    // Committed-write timeline per register: (commit position, writer).
    let max_reg = program
        .ops
        .iter()
        .flat_map(|o| o.accesses.iter().map(|a| a.reg))
        .max()
        .map_or(0, |m| m + 1);
    let mut timeline: Vec<Vec<(usize, usize)>> = vec![Vec::new(); max_reg];
    for (p, op) in program.ops.iter().enumerate() {
        for a in &op.accesses {
            if a.kind == AccessKind::Write {
                let entry = (commit_pos[p], p);
                if !timeline[a.reg].contains(&entry) {
                    timeline[a.reg].push(entry);
                }
            }
        }
    }
    for t in &mut timeline {
        t.sort_unstable();
    }

    // Value returned by each read + its availability interval in gap
    // coordinates [lo, hi] (gap i = just before event i; values committed
    // at event c are visible in gaps c+1 ..= next-overwrite-commit).
    let value_of = |p: usize, k: usize| -> Value {
        let a = program.ops[p].accesses[k];
        debug_assert_eq!(a.kind, AccessKind::Read);
        let pos = access_pos[p][k];
        // Own pending write earlier in program order?
        if program.ops[p].accesses[..k]
            .iter()
            .any(|b| b.kind == AccessKind::Write && b.reg == a.reg)
        {
            return Value::Own;
        }
        let mut latest: Option<usize> = None;
        for &(c, q) in &timeline[a.reg] {
            if c < pos && q != p {
                latest = Some(q);
            }
        }
        match latest {
            Some(q) => Value::Committed(q),
            None => Value::Initial,
        }
    };

    let interval_of = |p: usize, k: usize, value: Value| -> (usize, usize) {
        let a = program.ops[p].accesses[k];
        match value {
            // Own writes are consistent anywhere inside the op's span.
            Value::Own => (first_access_pos[p], commit_pos[p]),
            Value::Initial => {
                let hi =
                    timeline[a.reg].iter().find(|&&(_, q)| q != p).map_or(n_events, |&(c, _)| c);
                (0, hi)
            }
            Value::Committed(writer) => {
                let c = commit_pos[writer];
                let hi = timeline[a.reg]
                    .iter()
                    .find(|&&(c2, q)| c2 > c && q != p)
                    .map_or(n_events, |&(c2, _)| c2);
                (c + 1, hi)
            }
        }
    };

    // Per-operation feasibility.
    for (p, op) in program.ops.iter().enumerate() {
        let mut points: Vec<usize> = Vec::new();
        if op.accesses.is_empty() {
            if let Some(w) = witness.as_deref_mut() {
                w.push(points);
            }
            continue;
        }
        let steps = match sync {
            Synchronization::Monomorphic => {
                let coerced = crate::model::OpSpec {
                    accesses: op.accesses.clone(),
                    semantics: OpSemantics::Monomorphic,
                };
                coerced.critical_steps()
            }
            Synchronization::Polymorphic | Synchronization::LockBased => op.critical_steps(),
        };
        // Only the final step may contain writes (single-version model).
        for (si, step) in steps.iter().enumerate() {
            let has_write = step.iter().any(|&i| op.accesses[i].kind == AccessKind::Write);
            if has_write && si + 1 != steps.len() {
                return AcceptOutcome::fail(
                    p,
                    "unsupported semantics: writes outside the final critical step".into(),
                );
            }
        }

        let f = first_access_pos[p];
        let c = commit_pos[p];
        let mut cur = f;
        for (si, step) in steps.iter().enumerate() {
            let mut lo = f;
            let mut hi = c;
            for &i in step {
                if op.accesses[i].kind == AccessKind::Read {
                    let v = value_of(p, i);
                    let (vlo, vhi) = interval_of(p, i, v);
                    lo = lo.max(vlo);
                    hi = hi.min(vhi);
                }
            }
            let has_write = step.iter().any(|&i| op.accesses[i].kind == AccessKind::Write);
            if has_write {
                // Writes are published at commit: the step's point is c.
                if lo > c || hi < c {
                    return AcceptOutcome::fail(
                        p,
                        format!(
                            "critical step γ{} (write step) cannot be serialized at its \
                             commit: reads valid only in gaps [{lo}, {hi}], commit at {c}",
                            si + 1
                        ),
                    );
                }
                cur = c;
                points.push(c);
            } else {
                cur = cur.max(lo);
                if cur > hi {
                    return AcceptOutcome::fail(
                        p,
                        format!(
                            "critical step γ{} has no serialization point: needs a point \
                             ≥ {cur} but its reads are only valid through gap {hi}",
                            si + 1
                        ),
                    );
                }
                points.push(cur);
            }
        }
        if let Some(w) = witness.as_deref_mut() {
            w.push(points);
        }
    }
    AcceptOutcome::ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::Interleaving;
    use crate::model::{r, w, OpSpec, Program};

    fn inter(p: &Program, order: &[usize]) -> Interleaving {
        Interleaving::new(p, order.to_vec()).expect("valid interleaving")
    }

    #[test]
    fn serial_schedules_are_accepted_by_everyone() {
        let p = Program::new(vec![
            OpSpec::mono(vec![r(0), w(0)]),
            OpSpec::weak(vec![r(0), r(1), r(2)]),
            OpSpec::mono(vec![w(2)]),
        ]);
        let s = Interleaving::serial(&p);
        for sync in
            [Synchronization::LockBased, Synchronization::Monomorphic, Synchronization::Polymorphic]
        {
            assert!(accepts(&p, &s, sync).accepted, "{sync:?}");
        }
    }

    #[test]
    fn nonconflicting_overlap_is_accepted_by_mono() {
        // Two transactions on disjoint registers, fully interleaved.
        let p = Program::new(vec![OpSpec::mono(vec![r(0), w(0)]), OpSpec::mono(vec![r(1), w(1)])]);
        let i = inter(&p, &[0, 1, 0, 1, 0, 1]);
        assert!(accepts(&p, &i, Synchronization::Monomorphic).accepted);
    }

    #[test]
    fn dirty_interleaving_of_writers_is_rejected() {
        // T0: r(x) ... w(x)+commit; T1 overwrites x in between and
        // commits; T0's single step needs the initial x at its commit —
        // impossible.
        let p = Program::new(vec![OpSpec::mono(vec![r(0), w(0)]), OpSpec::mono(vec![w(0)])]);
        // events: p0 r(x) | p1 w(x) | p1 C | p0 w(x) | p0 C
        let i = inter(&p, &[0, 1, 1, 0, 0]);
        let out = accepts(&p, &i, Synchronization::Monomorphic);
        assert!(!out.accepted);
        assert_eq!(out.failing_proc, Some(0));
        // Polymorphism does not help: the semantics is genuinely atomic
        // (read and write in one step).
        assert!(!accepts(&p, &i, Synchronization::Polymorphic).accepted);
    }

    #[test]
    fn lost_update_requires_semantics_not_luck() {
        // Same as above but T0's semantics makes the read and write
        // separate critical steps (a "k-read-modify-write" style
        // weakening the paper mentions); then the interleaving is
        // accepted by polymorphic synchronization.
        let p = Program::new(vec![
            OpSpec {
                accesses: vec![r(0), w(0)],
                semantics: crate::model::OpSemantics::Explicit(vec![vec![0], vec![1]]),
            },
            OpSpec::mono(vec![w(0)]),
        ]);
        let i = inter(&p, &[0, 1, 1, 0, 0]);
        assert!(accepts(&p, &i, Synchronization::Polymorphic).accepted);
        assert!(!accepts(&p, &i, Synchronization::Monomorphic).accepted);
    }

    #[test]
    fn read_own_write_is_always_consistent() {
        let p = Program::new(vec![OpSpec::mono(vec![w(0), r(0), r(1)])]);
        let i = Interleaving::serial(&p);
        assert!(accepts(&p, &i, Synchronization::Monomorphic).accepted);
    }

    #[test]
    fn writes_outside_final_step_are_rejected_as_unsupported() {
        let p = Program::new(vec![OpSpec {
            accesses: vec![w(0), r(1)],
            semantics: crate::model::OpSemantics::Explicit(vec![vec![0], vec![1]]),
        }]);
        let i = Interleaving::serial(&p);
        let out = accepts(&p, &i, Synchronization::Polymorphic);
        assert!(!out.accepted);
        assert!(out.reason.contains("unsupported"));
    }

    #[test]
    fn mono_acceptance_implies_poly_acceptance_spot_checks() {
        // Structural property (used by Theorem 2's second half): finer
        // critical steps only relax the constraint system.
        let p = Program::new(vec![OpSpec::weak(vec![r(0), r(1), r(2)]), OpSpec::mono(vec![w(1)])]);
        for i in crate::interleave::enumerate_interleavings(&p) {
            let mono = accepts(&p, &i, Synchronization::Monomorphic).accepted;
            let poly = accepts(&p, &i, Synchronization::Polymorphic).accepted;
            if mono {
                assert!(poly, "mono-accepted schedule rejected by poly:\n{}", i.render(&p));
            }
        }
    }

    #[test]
    fn witness_points_are_monotone_and_in_span() {
        let p = Program::new(vec![
            OpSpec::weak(vec![r(0), r(1), r(2)]),
            OpSpec::mono(vec![w(0)]),
            OpSpec::mono(vec![w(2)]),
        ]);
        for i in crate::interleave::enumerate_interleavings(&p) {
            if let Ok(wit) = serialization_witness(&p, &i, Synchronization::Polymorphic) {
                assert_eq!(wit.len(), 3);
                for (q, points) in wit.iter().enumerate() {
                    assert_eq!(points.len(), p.ops[q].critical_steps().len());
                    assert!(points.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
                }
            }
        }
    }

    #[test]
    fn figure1_witness_shows_the_split() {
        let p = crate::figure1::figure1_program();
        let i = crate::figure1::figure1_interleaving();
        let wit = serialization_witness(&p, &i, Synchronization::Polymorphic)
            .expect("polymorphic accepts Figure 1");
        // p1's two critical steps serialize at different points: γ1 before
        // p2's commit (event 2), γ2 after p3's commit (event 5).
        let p1 = &wit[0];
        assert_eq!(p1.len(), 2);
        assert!(p1[0] <= 2, "γ1 must sit before w(x) commits, got {}", p1[0]);
        assert!(p1[1] >= 6, "γ2 must sit after w(z) commits, got {}", p1[1]);
    }

    #[test]
    fn witness_errors_mirror_accepts() {
        let p = crate::figure1::figure1_program();
        let i = crate::figure1::figure1_interleaving();
        let err = serialization_witness(&p, &i, Synchronization::Monomorphic).unwrap_err();
        assert!(!err.accepted);
        assert_eq!(err.failing_proc, Some(0));
    }
}
