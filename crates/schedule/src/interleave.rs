//! Schedules as interleavings, and bounded-exhaustive enumeration.
//!
//! An [`Interleaving`] is a total order over the events of a
//! [`Program`]'s operations. Each process `p` contributes
//! `|accesses(p)| + 1` events: its accesses in program order followed by
//! its `commit`. `start` events carry no information for acceptance (a
//! transaction may always start immediately before its first access), so
//! they are implicit.

use crate::model::{ProcId, Program};

/// One event slot in an interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// The `k`-th access (0-based) of the process.
    Access(ProcId, usize),
    /// The process's commit.
    Commit(ProcId),
}

/// A total order over all events of a program. Stored as the sequence of
/// process ids; the `k`-th occurrence of process `p` denotes `p`'s `k`-th
/// event (accesses in order, then commit).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Interleaving {
    order: Vec<ProcId>,
}

impl Interleaving {
    /// Build from a process-id sequence; validates event counts.
    pub fn new(program: &Program, order: Vec<ProcId>) -> Result<Self, String> {
        let mut counts = vec![0usize; program.procs()];
        for &p in &order {
            if p >= program.procs() {
                return Err(format!("process {p} out of range"));
            }
            counts[p] += 1;
        }
        for (p, op) in program.ops.iter().enumerate() {
            let expect = op.accesses.len() + 1;
            if counts[p] != expect {
                return Err(format!(
                    "process {p} must contribute {expect} events, got {}",
                    counts[p]
                ));
            }
        }
        Ok(Self { order })
    }

    /// The serial interleaving: process 0's events, then process 1's, …
    pub fn serial(program: &Program) -> Self {
        let mut order = Vec::with_capacity(program.total_events());
        for (p, op) in program.ops.iter().enumerate() {
            for _ in 0..=op.accesses.len() {
                order.push(p);
            }
        }
        Self { order }
    }

    /// Expand to slots `(process, which event)`.
    pub fn slots(&self, program: &Program) -> Vec<Slot> {
        let mut next = vec![0usize; program.procs()];
        self.order
            .iter()
            .map(|&p| {
                let k = next[p];
                next[p] += 1;
                if k < program.ops[p].accesses.len() {
                    Slot::Access(p, k)
                } else {
                    Slot::Commit(p)
                }
            })
            .collect()
    }

    /// Raw process-id order.
    pub fn order(&self) -> &[ProcId] {
        &self.order
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the interleaving has no events.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Render like the paper's Figure 1: one column per process.
    pub fn render(&self, program: &Program) -> String {
        use crate::model::AccessKind;
        let names = ["x", "y", "z", "u", "v", "s", "t"];
        let regname =
            |r: usize| names.get(r).map(|s| s.to_string()).unwrap_or_else(|| format!("g{r}"));
        let width = 14usize;
        let mut out = String::new();
        for p in 0..program.procs() {
            out.push_str(&format!("{:^width$}", format!("p{}", p + 1)));
        }
        out.push('\n');
        for slot in self.slots(program) {
            let (p, text) = match slot {
                Slot::Access(p, k) => {
                    let a = program.ops[p].accesses[k];
                    let t = match a.kind {
                        AccessKind::Read => format!("r({})", regname(a.reg)),
                        AccessKind::Write => format!("w({})", regname(a.reg)),
                    };
                    (p, t)
                }
                Slot::Commit(p) => (p, "commit".to_string()),
            };
            for q in 0..program.procs() {
                if q == p {
                    out.push_str(&format!("{text:^width$}"));
                } else {
                    out.push_str(&" ".repeat(width));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Enumerate **all** interleavings of a program's events that respect
/// per-process program order. The count is the multinomial coefficient
/// `(Σ n_p)! / Π n_p!` — keep programs small (the theorem checks use ≤ 3
/// processes with ≤ 4 events each).
pub fn enumerate_interleavings(program: &Program) -> Vec<Interleaving> {
    let counts: Vec<usize> = program.ops.iter().map(|o| o.accesses.len() + 1).collect();
    let total: usize = counts.iter().sum();
    let mut out = Vec::new();
    let mut remaining = counts;
    let mut prefix = Vec::with_capacity(total);
    fn rec(
        remaining: &mut Vec<usize>,
        prefix: &mut Vec<ProcId>,
        total: usize,
        out: &mut Vec<Interleaving>,
    ) {
        if prefix.len() == total {
            out.push(Interleaving { order: prefix.clone() });
            return;
        }
        for p in 0..remaining.len() {
            if remaining[p] > 0 {
                remaining[p] -= 1;
                prefix.push(p);
                rec(remaining, prefix, total, out);
                prefix.pop();
                remaining[p] += 1;
            }
        }
    }
    rec(&mut remaining, &mut prefix, total, &mut out);
    out
}

/// Number of interleavings without materializing them (multinomial).
pub fn count_interleavings(program: &Program) -> u128 {
    let mut total: u128 = 1;
    let mut placed: u128 = 0;
    for op in &program.ops {
        let n = (op.accesses.len() + 1) as u128;
        // multiply by C(placed + n, n)
        for i in 1..=n {
            total = total * (placed + i) / i;
        }
        placed += n;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{r, w, OpSpec, Program};

    fn two_proc_program() -> Program {
        Program::new(vec![OpSpec::mono(vec![r(0), w(0)]), OpSpec::mono(vec![w(1)])])
    }

    #[test]
    fn new_validates_counts() {
        let p = two_proc_program();
        assert!(Interleaving::new(&p, vec![0, 0, 0, 1, 1]).is_ok());
        assert!(Interleaving::new(&p, vec![0, 0, 1, 1]).is_err());
        assert!(Interleaving::new(&p, vec![0, 0, 0, 1, 7]).is_err());
    }

    #[test]
    fn serial_layout_and_slots() {
        let p = two_proc_program();
        let s = Interleaving::serial(&p);
        assert_eq!(s.order(), &[0, 0, 0, 1, 1]);
        assert_eq!(
            s.slots(&p),
            vec![
                Slot::Access(0, 0),
                Slot::Access(0, 1),
                Slot::Commit(0),
                Slot::Access(1, 0),
                Slot::Commit(1),
            ]
        );
    }

    #[test]
    fn enumeration_matches_multinomial() {
        let p = two_proc_program();
        let all = enumerate_interleavings(&p);
        // C(5, 2) = 10 ways to place the 2 events of proc 1 among 5 slots.
        assert_eq!(all.len(), 10);
        assert_eq!(count_interleavings(&p), 10);
        // All distinct.
        let mut set = std::collections::HashSet::new();
        for i in &all {
            assert!(set.insert(i.order().to_vec()));
        }
    }

    #[test]
    fn enumeration_respects_program_order() {
        let p = two_proc_program();
        for inter in enumerate_interleavings(&p) {
            let slots = inter.slots(&p);
            // Commit of each proc is its last event.
            let mut seen_commit = [false; 2];
            for s in slots {
                match s {
                    Slot::Access(q, _) => assert!(!seen_commit[q]),
                    Slot::Commit(q) => seen_commit[q] = true,
                }
            }
        }
    }

    #[test]
    fn render_contains_columns() {
        let p = two_proc_program();
        let s = Interleaving::serial(&p);
        let txt = s.render(&p);
        assert!(txt.contains("p1"));
        assert!(txt.contains("r(x)"));
        assert!(txt.contains("w(y)"));
        assert!(txt.contains("commit"));
    }

    #[test]
    fn count_three_procs() {
        let p = Program::new(vec![
            OpSpec::weak(vec![r(0), r(1), r(2)]),
            OpSpec::mono(vec![w(0)]),
            OpSpec::mono(vec![w(2)]),
        ]);
        // events: 4, 2, 2 -> 8!/(4!2!2!) = 420
        assert_eq!(count_interleavings(&p), 420);
        assert_eq!(enumerate_interleavings(&p).len(), 420);
    }
}
